"""Cross-layer invariant checking: what must hold after *any* run.

The resilience argument is only as strong as its checkable contract.  After
every chaos run (and in ordinary tests) the engine's observable record is
audited against the invariants the paper's execution model promises:

- **exactly-once commit** — every expected iteration committed exactly once
  (``commits == expected``), with no duplicate commit hidden in the stream;
- **in-order commit** — the committed sequence was the iteration order
  (``in_order_commits == commits``; the sequential-equivalence contract of
  observationally cooperative multithreading);
- **output fidelity** — bit-identical output to the sequential oracle;
- **bounded queues** — no channel ever observed above its capacity (the
  paper's full/empty-blocking discipline);
- **monotone checkpoints** — checkpoint indices strictly increase and the
  covered prefix never regresses;
- **metric consistency** — internal counters agree with each other (every
  conflict produced a serial re-execution, etc.).

A violation is never a bare assert: it is taxonomized
(:class:`InvariantKind`), carries a structured detail, and the batch raises
one :class:`InvariantError` naming everything that broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Optional, Sequence


class InvariantKind(Enum):
    """The violation taxonomy."""

    EXACTLY_ONCE_COMMIT = "exactly-once-commit"
    IN_ORDER_COMMIT = "in-order-commit"
    OUTPUT_DIVERGENCE = "output-divergence"
    QUEUE_OCCUPANCY = "queue-occupancy-bound"
    CHECKPOINT_MONOTONICITY = "checkpoint-monotonicity"
    METRIC_CONSISTENCY = "metric-consistency"


@dataclass(frozen=True)
class InvariantViolation:
    kind: InvariantKind
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.detail}"


class InvariantError(RuntimeError):
    """One or more invariants failed; carries the full taxonomized list."""

    def __init__(self, violations: Sequence[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {violation}" for violation in self.violations]
        super().__init__("\n".join(lines))


_UNSET = object()


def check_run(
    result,
    *,
    expected_commits: Optional[int] = None,
    sequential_output: Any = _UNSET,
) -> List[InvariantViolation]:
    """Audit one :class:`~repro.exec.engine.EngineResult`.

    ``expected_commits`` defaults to the run's iteration count minus any
    resumed prefix; pass ``sequential_output`` to also check output
    fidelity against the oracle.
    """
    metrics = result.metrics
    violations: List[InvariantViolation] = []

    if expected_commits is None:
        expected_commits = metrics.iterations - (metrics.resumed_from or 0)
    if metrics.commits != expected_commits:
        violations.append(
            InvariantViolation(
                InvariantKind.EXACTLY_ONCE_COMMIT,
                f"expected {expected_commits} commits, saw {metrics.commits}",
            )
        )
    if metrics.in_order_commits != metrics.commits:
        violations.append(
            InvariantViolation(
                InvariantKind.IN_ORDER_COMMIT,
                f"{metrics.commits} commits but only "
                f"{metrics.in_order_commits} landed in iteration order",
            )
        )
    if sequential_output is not _UNSET and result.output != sequential_output:
        violations.append(
            InvariantViolation(
                InvariantKind.OUTPUT_DIVERGENCE,
                f"engine output {result.output!r} != sequential oracle "
                f"{sequential_output!r}",
            )
        )
    for name, stats in metrics.channel_stats.items():
        if stats.get("max_occupancy", 0) > stats.get("capacity", 0):
            violations.append(
                InvariantViolation(
                    InvariantKind.QUEUE_OCCUPANCY,
                    f"channel {name!r} observed occupancy "
                    f"{stats['max_occupancy']} > capacity {stats['capacity']}",
                )
            )
        if stats.get("consumes", 0) > stats.get("produces", 0):
            violations.append(
                InvariantViolation(
                    InvariantKind.METRIC_CONSISTENCY,
                    f"channel {name!r} consumed {stats['consumes']} items "
                    f"but only {stats['produces']} were produced",
                )
            )
        if stats.get("flushes", 0) > stats.get("produces", 0):
            violations.append(
                InvariantViolation(
                    InvariantKind.METRIC_CONSISTENCY,
                    f"channel {name!r} recorded {stats['flushes']} frame "
                    f"flushes for only {stats['produces']} produced items",
                )
            )
    violations.extend(check_checkpoints(getattr(result, "checkpoints", [])))
    if metrics.serial_reexecutions < metrics.conflicts:
        violations.append(
            InvariantViolation(
                InvariantKind.METRIC_CONSISTENCY,
                f"{metrics.conflicts} conflicts but only "
                f"{metrics.serial_reexecutions} serial re-executions",
            )
        )
    if metrics.commits > metrics.iterations:
        violations.append(
            InvariantViolation(
                InvariantKind.METRIC_CONSISTENCY,
                f"{metrics.commits} commits exceed "
                f"{metrics.iterations} iterations",
            )
        )
    return violations


def check_checkpoints(checkpoints: Sequence) -> List[InvariantViolation]:
    """Monotonicity over a run's retained checkpoints."""
    violations: List[InvariantViolation] = []
    previous_index = None
    previous_cover = None
    for checkpoint in checkpoints:
        if previous_index is not None and checkpoint.index <= previous_index:
            violations.append(
                InvariantViolation(
                    InvariantKind.CHECKPOINT_MONOTONICITY,
                    f"checkpoint index {checkpoint.index} does not advance "
                    f"past {previous_index}",
                )
            )
        if previous_cover is not None and checkpoint.next_commit < previous_cover:
            violations.append(
                InvariantViolation(
                    InvariantKind.CHECKPOINT_MONOTONICITY,
                    f"checkpoint covers prefix {checkpoint.next_commit}, "
                    f"regressing from {previous_cover}",
                )
            )
        previous_index = checkpoint.index
        previous_cover = checkpoint.next_commit
    return violations


def assert_run(
    result,
    *,
    expected_commits: Optional[int] = None,
    sequential_output: Any = _UNSET,
) -> None:
    """:func:`check_run`, raising :class:`InvariantError` on any violation."""
    violations = check_run(
        result,
        expected_commits=expected_commits,
        sequential_output=sequential_output,
    )
    if violations:
        raise InvariantError(violations)
