"""repro.resilience — survive arbitrary fault timing, recover incrementally.

PR 1's engine made misspeculation survivable; this package makes it
*resumable*, *adaptive*, and *auditable*:

- :mod:`repro.resilience.checkpoint` — the committer periodically freezes
  the committed prefix (iteration index, committed store, accumulator,
  counters) so producer death, budget exhaustion, or an engine-level crash
  resumes from the last checkpoint instead of a cold sequential re-run;
- :mod:`repro.resilience.throttle`   — an AIMD feedback controller over the
  speculative window: exponential backoff under misspeculation storms,
  additive probing back up when they pass — the live-runtime analog of the
  paper's profile-driven misspeculation-as-serialization;
- :mod:`repro.resilience.chaos`      — seeded, reproducible randomized
  fault schedules (crash/hang/soft-fault/forced-conflict/latency/
  duplicate/drop, worker- and channel-side, plus whole-server SIGKILL
  schedules for the durable job plane), every run replayable from its
  printed seed;
- :mod:`repro.resilience.invariants` — cross-layer checkers (exactly-once
  in-order commit, sequential-oracle output fidelity, bounded queue
  occupancy, monotone checkpoints, metric consistency) that turn any
  violation into a structured, taxonomized error.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    CheckpointManager,
    spec_fingerprint,
)
from repro.resilience.chaos import (
    CHAOS_POLICY,
    ChaosConfig,
    ChaosReport,
    ServerKillPlan,
    chaos_channel_plan,
    chaos_plan,
    run_chaos,
    server_kill_plan,
)
from repro.resilience.invariants import (
    InvariantError,
    InvariantKind,
    InvariantViolation,
    assert_run,
    check_checkpoints,
    check_run,
)
from repro.resilience.throttle import (
    SpeculationThrottle,
    ThrottleConfig,
    max_window_for,
)

__all__ = [
    "CHAOS_POLICY",
    "ChaosConfig",
    "ChaosReport",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointManager",
    "InvariantError",
    "InvariantKind",
    "InvariantViolation",
    "ServerKillPlan",
    "SpeculationThrottle",
    "ThrottleConfig",
    "assert_run",
    "chaos_channel_plan",
    "chaos_plan",
    "check_checkpoints",
    "check_run",
    "max_window_for",
    "run_chaos",
    "server_kill_plan",
    "spec_fingerprint",
]
