"""Checkpoint/resume for the execution engine's committed prefix.

The committer is the single point of truth: everything before ``next_commit``
is final — the committed :class:`~repro.exec.rollback.CommittedStore` state,
the user accumulator, and the run counters.  A :class:`Checkpoint` freezes
exactly that prefix; :class:`CheckpointManager` takes one every
``interval`` commits (in the committer, never in a worker) and optionally
persists it to disk with an atomic write.

Resume (:meth:`repro.exec.engine.ExecutionEngine.run` with ``resume_from=``)
rebuilds the store and accumulator from the checkpoint and starts committing
at ``next_commit`` — phase A is replayed from iteration 0 so stateful
producers evolve deterministically, but no pre-checkpoint iteration executes
phase B or C again.  This is what turns a producer death, respawn-budget
exhaustion, or an engine-level crash from a cold sequential re-run into an
incremental restart.

Checkpoint indices are monotone by construction and checked again by
:mod:`repro.resilience.invariants`; a regression is a structured
taxonomized error, never silent corruption.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # runtime import would be circular: engine imports us
    from repro.exec.metrics import EngineMetrics
    from repro.exec.rollback import CommittedStore, Location


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, loaded, or resumed from."""


def spec_fingerprint(spec) -> str:
    """A cheap compatibility stamp: resume only into the same-shaped run."""
    return f"iterations={spec.iterations}|speculative={int(spec.speculative)}"


@dataclass
class Checkpoint:
    """One frozen committed prefix of a run.

    ``index`` is the monotone sequence number of this checkpoint within (and
    across resumed segments of) one logical run; ``next_commit`` is the
    first iteration *not* covered — resume re-executes from there.
    """

    index: int
    next_commit: int
    store_values: Dict[Location, Any]
    store_versions: Dict[Location, int]
    store_commit_counter: int
    accumulator: Any
    metrics: dict
    fingerprint: str

    def restore_store(self) -> "CommittedStore":
        from repro.exec.rollback import CommittedStore

        return CommittedStore.restore(
            self.store_values, self.store_versions, self.store_commit_counter
        )

    def restore_accumulator(self) -> Any:
        # Deep copy so a resumed run never mutates the checkpoint in place —
        # the same checkpoint must support repeated resume attempts.
        return copy.deepcopy(self.accumulator)

    def save(self, path: str) -> None:
        """Atomic persist: write to a temp file, then rename into place."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        handle, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def load(path: str) -> "Checkpoint":
        try:
            with open(path, "rb") as stream:
                checkpoint = pickle.load(stream)
        except (OSError, pickle.UnpicklingError, EOFError) as error:
            raise CheckpointError(
                f"cannot load checkpoint from {path!r}: {error}"
            ) from error
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"{path!r} does not contain a Checkpoint "
                f"(got {type(checkpoint).__name__})"
            )
        return checkpoint


@dataclass(frozen=True)
class CheckpointConfig:
    """How often to checkpoint and where.

    ``interval`` — commits between checkpoints;
    ``path``     — optional file the latest checkpoint is persisted to
    (atomically; the file always holds one complete checkpoint);
    ``keep``     — how many checkpoints stay resident in memory.
    """

    interval: int = 8
    path: Optional[str] = None
    keep: int = 8

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if self.keep < 1:
            raise ValueError("must keep at least one checkpoint")


@dataclass
class CheckpointManager:
    """Takes and records checkpoints for one engine run.

    Lives entirely in the committer.  ``indices`` keeps every index ever
    issued (cheap ints) so the monotonicity invariant can be audited even
    after old checkpoint payloads have been evicted from the ``keep`` ring.
    """

    config: CheckpointConfig
    fingerprint: str
    next_index: int = 0
    checkpoints: List[Checkpoint] = field(default_factory=list)
    indices: List[int] = field(default_factory=list)
    taken: int = 0
    _last_marked_commit: int = 0

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def maybe(
        self,
        next_commit: int,
        store: CommittedStore,
        accumulator: Any,
        metrics: EngineMetrics,
    ) -> Optional[Checkpoint]:
        """Checkpoint if ``interval`` commits have landed since the last one."""
        if next_commit - self._last_marked_commit < self.config.interval:
            return None
        return self.take(next_commit, store, accumulator, metrics)

    def take(
        self,
        next_commit: int,
        store: CommittedStore,
        accumulator: Any,
        metrics: EngineMetrics,
    ) -> Checkpoint:
        latest = self.latest
        if latest is not None and next_commit < latest.next_commit:
            raise CheckpointError(
                f"checkpoint regression: next_commit {next_commit} < "
                f"already-checkpointed {latest.next_commit}"
            )
        values, versions, counter = store.export_state()
        checkpoint = Checkpoint(
            index=self.next_index,
            next_commit=next_commit,
            store_values=copy.deepcopy(values),
            store_versions=dict(versions),
            store_commit_counter=counter,
            accumulator=copy.deepcopy(accumulator),
            metrics=metrics.to_json(),
            fingerprint=self.fingerprint,
        )
        self.next_index += 1
        self.taken += 1
        self._last_marked_commit = next_commit
        self.indices.append(checkpoint.index)
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.config.keep:
            del self.checkpoints[: -self.config.keep]
        if self.config.path:
            checkpoint.save(self.config.path)
        return checkpoint
