"""Adaptive speculation throttling: the runtime feedback analog of the
paper's profile-driven misspeculation-as-serialization.

The simulator *predicts* misspeculation cost from profiles and serializes
accordingly; the live engine cannot see the future, so it watches the
committed stream instead.  :class:`SpeculationThrottle` observes, per
commit, whether the commit required a rollback (conflict) or a fault-driven
serial retry, and controls the **speculative window** — how many iterations
past the commit frontier workers may execute.  Under a misspeculation storm
the window shrinks multiplicatively (exponential backoff toward serial
execution, window 1 = the sequential model); when the storm passes it
probes back up additively.  Classic AIMD, applied to speculation depth.

Enforcement is cooperative and cheap: the engine publishes the commit
watermark and the current window in shared memory; a worker holding
iteration ``i`` waits while ``i - watermark >= window`` before executing.
Gated claims are exempted from the hung-task timeout (the engine refreshes
their claim clocks), so throttling can never be mistaken for a hang.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

logger = logging.getLogger(__name__)


def max_window_for(workers: int, capacity: int, batch_size: int = 1) -> int:
    """The in-flight ceiling the controller starts from.

    With chunked dispatch every worker can hold a full chunk of
    ``batch_size`` claimed-but-uncommitted iterations on top of a full work
    channel, so the uncontrolled speculation depth is
    ``workers * batch_size + capacity`` — the window the throttle opens to
    when the pipeline is clean, and backs off from under misspeculation.
    """
    return workers * max(1, batch_size) + capacity


@dataclass(frozen=True)
class ThrottleConfig:
    """Controller constants.

    ``observation``    — commits per decision epoch;
    ``high_watermark`` — misspeculation rate at/above which the window
    backs off multiplicatively (``backoff`` factor);
    ``low_watermark``  — rate at/below which the window probes up by
    ``probe_step``;
    ``min_window``     — the serial floor (1 = one in-flight iteration,
    i.e. no speculation beyond the commit frontier).
    """

    enabled: bool = True
    observation: int = 8
    high_watermark: float = 0.5
    low_watermark: float = 0.125
    backoff: float = 0.5
    probe_step: int = 1
    min_window: int = 1

    def __post_init__(self):
        if self.observation < 1:
            raise ValueError("observation epoch must be >= 1")
        if not 0.0 < self.backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if self.probe_step < 1:
            raise ValueError("probe_step must be >= 1")
        if not 0.0 <= self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 <= low_watermark <= high_watermark <= 1"
            )


class SpeculationThrottle:
    """AIMD controller over the speculative window.

    ``record(misspeculated)`` is called once per commit by the committer;
    it returns the new window when the epoch's decision changed it, else
    ``None`` — the engine publishes changes to the workers' shared value.
    """

    def __init__(self, config: ThrottleConfig, max_window: int) -> None:
        if max_window < config.min_window:
            raise ValueError("max_window must be >= min_window")
        self.config = config
        self.max_window = max_window
        self.window = max_window
        self.min_window_seen = max_window
        self.shrinks = 0
        self.grows = 0
        self._epoch_events = 0
        self._epoch_bad = 0

    def record(self, misspeculated: bool) -> "int | None":
        if not self.config.enabled:
            return None
        self._epoch_events += 1
        if misspeculated:
            self._epoch_bad += 1
        if self._epoch_events < self.config.observation:
            return None
        rate = self._epoch_bad / self._epoch_events
        self._epoch_events = 0
        self._epoch_bad = 0
        new_window = self.window
        if rate >= self.config.high_watermark:
            new_window = max(
                self.config.min_window, int(self.window * self.config.backoff)
            )
        elif rate <= self.config.low_watermark:
            new_window = min(
                self.max_window, self.window + self.config.probe_step
            )
        if new_window == self.window:
            return None
        if new_window < self.window:
            self.shrinks += 1
        else:
            self.grows += 1
        logger.debug(
            "throttle %s: window %d -> %d (epoch misspeculation rate %.2f)",
            "shrink" if new_window < self.window else "grow",
            self.window, new_window, rate,
        )
        self.window = new_window
        self.min_window_seen = min(self.min_window_seen, new_window)
        return new_window
