"""253.perlbmk analog: a stack-machine bytecode interpreter.

Section 4.1.3: Perl executes one operation at a time from
``Perl_runops_standard``; source statements are op sequences demarcated by
NEXTSTATE.  The parallelization (a) speculatively *chases next_op* to find
the coming statement boundaries (phase A), (b) value-speculates the virtual
machine's globals (``PL_stack_sp``, ``PL_temp_ixs``) to be restored at every
NEXTSTATE — which profiling shows they are — and (c) runs whole statements
in parallel (phase B).  "The parallelization is limited by misspeculation
that occurs because the input statements are truly data dependent."

The analog interprets a real bytecode (PUSH/LOAD/STORE/ADD/MUL/NEG/PRINT)
over a generated program whose consecutive statements usually share
variables, so the cross-statement RAW dependences — and the resulting
~1.2x ceiling — emerge from actual dataflow, not from tuning knobs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import Xorshift

# Opcodes.
PUSH, LOAD, STORE, ADD, MUL, NEG, PRINT, NEXTSTATE = range(8)

Instruction = Tuple[int, int]  # (opcode, operand)


def generate_program(seed: int, statements: int, variables: int = 12,
                     locality: float = 0.85) -> List[List[Instruction]]:
    """A bytecode program of ``statements`` statements.

    With probability ``locality`` a statement reads a variable written by
    one of the three preceding statements — the "truly data dependent"
    structure of real Perl scripts.
    """
    rng = Xorshift(seed)
    recent_writes: List[int] = [0]
    program: List[List[Instruction]] = []
    for _ in range(statements):
        ops: List[Instruction] = []
        if rng.chance(locality) and recent_writes:
            # Real scripts overwhelmingly consume the value they just
            # computed; occasionally one a couple of statements back.
            if rng.chance(0.85):
                source = recent_writes[-1]
            else:
                source = recent_writes[-1 - rng.below(min(3, len(recent_writes)))]
        else:
            source = rng.below(variables)
        target = rng.below(variables)
        ops.append((LOAD, source))
        ops.append((PUSH, rng.below(100)))
        ops.append((ADD, 0))
        if rng.chance(0.5):
            ops.append((PUSH, 1 + rng.below(7)))
            ops.append((MUL, 0))
        if rng.chance(0.2):
            ops.append((NEG, 0))
        ops.append((STORE, target))
        if rng.chance(0.3):
            ops.append((LOAD, target))
            ops.append((PRINT, 0))
        ops.append((NEXTSTATE, 0))
        program.append(ops)
        recent_writes.append(target)
        if len(recent_writes) > 8:
            recent_writes.pop(0)
    return program


class PerlbmkWorkload(Workload):
    """Perl_runops_standard with statement-level speculation."""

    info = WorkloadInfo(
        name="253.perlbmk",
        loops=("Perl_runops_standard (run.c:30)",),
        exec_time_pct="100%",
        lines_changed_all=0,
        lines_changed_model=0,
        techniques=(
            "Alias, Control & Value Speculation", "TLS Memory", "DSWP",
        ),
    )

    def __init__(self, seed: int = 253, statements: int = 420,
                 locality: float = 1.0) -> None:
        # The paper's inputs are overwhelmingly data dependent; locality 1.0
        # means every statement consumes a recently produced value.
        self.program = generate_program(seed, statements, locality=locality)

    def run(self, tracer: Tracer):
        variables: Dict[int, int] = {}
        output: List[int] = []
        modulus = 1 << 31

        for iteration, statement in enumerate(self.program):
            with tracer.task("A", iteration):
                # Speculatively chase next_op to the coming NEXTSTATE.
                tracer.work(1 + len(statement) // 4)

            with tracer.task("B", iteration):
                stack: List[int] = []
                work = 0
                printed: List[int] = []
                for opcode, operand in statement:
                    work += 2
                    if opcode == PUSH:
                        stack.append(operand)
                    elif opcode == LOAD:
                        tracer.load("perl.var", operand)
                        stack.append(variables.get(operand, 0))
                        work += 2
                    elif opcode == STORE:
                        value = stack.pop() % modulus
                        variables[operand] = value
                        tracer.store("perl.var", operand, value=value)
                        work += 2
                    elif opcode == ADD:
                        right, left = stack.pop(), stack.pop()
                        stack.append((left + right) % modulus)
                    elif opcode == MUL:
                        right, left = stack.pop(), stack.pop()
                        stack.append((left * right) % modulus)
                        work += 1
                    elif opcode == NEG:
                        stack.append((-stack.pop()) % modulus)
                    elif opcode == PRINT:
                        printed.append(stack.pop())
                        work += 3
                    elif opcode == NEXTSTATE:
                        # The VM globals are back to their resting state:
                        # the value-speculation sites the profile proves.
                        tracer.value("PL_stack_sp", len(stack))
                        tracer.value("PL_temp_ixs", 0)
                tracer.store("perl.stmt", iteration, value=len(printed))
                tracer.work(work * 4)

            with tracer.task("C", iteration):
                tracer.load("perl.stmt", iteration)
                output.extend(printed)
                tracer.work(1 + len(printed))

        return {
            "printed": len(output),
            "digest": sum(i * v for i, v in enumerate(output)) % (1 << 32),
            "statements": len(self.program),
        }
