"""197.parser analog: a CYK grammar checker over generated sentences.

Section 4.3.2: "As each sentence is grammatically independent of every other
sentence, parsing can occur in parallel for each sentence."  Two obstacles,
both reproduced here:

- a sentence may be a *command* (toggling echo mode, etc.); the paper places
  command handling in the phase A thread so no speculation is needed;
- the 60 MB up-front memory pool: "to avoid dependences from the memory
  allocator interfering with parallelization, it is marked with Commutative
  annotation".  The analog's arena allocator is a module-level bump
  allocator annotated ``@commutative``; un-annotated (the ablation), every
  parse serializes on the arena top pointer.

The parser itself is a real CYK recognizer over a small CNF grammar —
O(n³·|rules|) per sentence, so task costs vary realistically with sentence
length, and the longest sentence caps the speedup exactly as the paper notes
("limited only by the time it takes to parse the longest sentence").
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.annotations.commutative import commutative
from repro.profiling.context import current_tracer
from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import Xorshift, generate_sentences

# -- the Commutative arena allocator (the paper's 60MB pool) ---------------------------

_ARENA_TOP = [0]


def _reset_arena() -> None:
    _ARENA_TOP[0] = 0


def xfree_all() -> None:
    """Rollback partner of :func:`xalloc` (releases the whole parse arena)."""
    _ARENA_TOP[0] = 0


@commutative(group="parser.xalloc", rollback=xfree_all)
def xalloc(size: int) -> int:
    """Bump-allocate ``size`` cells from the shared pool.

    The internal dependence on the arena top pointer is real — and invisible
    to the parallelizer thanks to the Commutative annotation.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.load("xalloc", "top")
    offset = _ARENA_TOP[0]
    _ARENA_TOP[0] = offset + size
    if tracer is not None:
        tracer.store("xalloc", "top", value=_ARENA_TOP[0])
        tracer.work(1)
    return offset


# -- the grammar (Chomsky normal form) ---------------------------------------------------

_TERMINALS: Dict[str, Set[str]] = {
    "Det": {"the", "a"},
    "N": {"dog", "cat", "bird", "tree", "house", "river", "cloud", "stone"},
    "V": {"sees", "likes", "chases", "finds", "watches"},
    "Adj": {"big", "small", "old", "quick", "quiet"},
    "P": {"near", "under", "over"},
}

_BINARY_RULES: List[Tuple[str, str, str]] = [
    ("S", "NP", "VP"),
    ("NP", "Det", "N"),
    ("NP", "Det", "AP"),
    ("AP", "Adj", "N"),
    ("VP", "V", "NP"),
    ("VP", "VP", "PP"),
    ("VP", "VP", "NP"),
    ("PP", "P", "NP"),
    ("NP", "NP", "PP"),
]


class ParserWorkload(Workload):
    """batch_process over a file of sentences and interspersed commands."""

    info = WorkloadInfo(
        name="197.parser",
        loops=("batch_process (main.c:1522-1779)",),
        exec_time_pct="100%",
        lines_changed_all=3,
        lines_changed_model=3,
        techniques=("Commutative", "TLS Memory", "DSWP"),
    )

    def __init__(self, seed: int = 197, sentence_count: int = 480,
                 command_every: int = 160) -> None:
        self.sentences = generate_sentences(seed, sentence_count, 4, 12)
        # Sprinkle a few ungrammatical sentences so the checker has real work
        # to reject (shuffled word order).
        rng = Xorshift(seed * 7 + 1)
        for index in range(0, sentence_count, 9):
            words = self.sentences[index]
            i, j = rng.below(len(words)), rng.below(len(words))
            words[i], words[j] = words[j], words[i]
        self.command_every = command_every

    def forced_synchronized(self):
        # Command handling lives in phase A; the echo-mode flag is the
        # dependence the paper synchronizes rather than speculates.
        return [("parser", "echo_mode")]

    # -- real execution on the multiprocess engine ----------------------------------

    has_exec_spec = True

    def exec_spec(self):
        """Run batch_process for real: per-sentence parallel CYK parses.

        Commands (and the echo-mode flag they toggle) stay in the stateful
        phase-A producer, exactly where Section 4.3.2 puts them, so phase B
        is pure per-sentence work.
        """
        from repro.exec.engine import PipelineSpec

        return PipelineSpec(
            iterations=len(self.sentences),
            produce=_ExecProduce(self.sentences, self.command_every),
            work=_exec_work,
            init=_exec_init,
            commit=_exec_commit,
        )

    def run(self, tracer: Tracer):
        _reset_arena()
        echo_mode = False
        results: List[bool] = []
        echoed = 0

        for iteration, words in enumerate(self.sentences):
            is_command = (
                self.command_every and iteration % self.command_every == self.command_every - 1
            )
            with tracer.task("A", iteration):
                # Tokenize; commands are handled here, in the sequential
                # phase, per Section 4.3.2.
                tracer.work(len(words))
                if is_command:
                    echo_mode = not echo_mode
                    tracer.store("parser", "echo_mode", value=echo_mode)

            with tracer.task("B", iteration):
                if is_command:
                    tracer.work(1)
                    grammatical = True
                else:
                    tracer.load("parser", "echo_mode")
                    grammatical, work = cyk_parse(words)
                    tracer.work(work)
                    if echo_mode:
                        echoed += 1
                tracer.store("parse.result", iteration, value=grammatical)

            with tracer.task("C", iteration):
                tracer.load("parse.result", iteration)
                results.append(grammatical)
                tracer.work(1 + len(words) // 8)

        return {
            "accepted": sum(results),
            "rejected": len(results) - sum(results),
            "echoed": echoed,
        }


# -- picklable pipeline stages for repro.exec --------------------------------------


class _ExecProduce:
    """Stateful phase A: tokenize, handle commands, track echo mode."""

    def __init__(self, sentences: List[List[str]], command_every: int) -> None:
        self.sentences = sentences
        self.command_every = command_every
        self.echo_mode = False

    def __call__(self, i: int) -> Tuple[List[str], bool, bool]:
        words = self.sentences[i]
        is_command = bool(
            self.command_every and i % self.command_every == self.command_every - 1
        )
        if is_command:
            self.echo_mode = not self.echo_mode
        return words, is_command, self.echo_mode


def _exec_work(i: int, payload: Tuple[List[str], bool, bool]) -> Tuple[bool, int]:
    words, is_command, echo_mode = payload
    if is_command:
        return True, 0
    grammatical, _work = cyk_parse(words)
    return grammatical, 1 if echo_mode else 0


def _exec_init() -> dict:
    return {"accepted": 0, "rejected": 0, "echoed": 0}


def _exec_commit(i: int, result: Tuple[bool, int], acc: dict) -> None:
    grammatical, echoed = result
    if grammatical:
        acc["accepted"] += 1
    else:
        acc["rejected"] += 1
    acc["echoed"] += echoed


def cyk_parse(words: List[str]) -> Tuple[bool, int]:
    """CYK recognition; returns (grammatical, work units).

    The chart rows are arena-allocated through the Commutative ``xalloc``,
    exactly where 197.parser hits its internal memory manager.
    """
    n = len(words)
    xalloc(n * n)  # the chart
    chart: List[List[Set[str]]] = [[set() for _ in range(n)] for _ in range(n)]
    work = n

    for i, word in enumerate(words):
        for category, members in _TERMINALS.items():
            work += 1
            if word in members:
                chart[0][i].add(category)

    for span in range(2, n + 1):
        xalloc(n - span + 1)  # per-row scratch, as the real parser does
        for start in range(n - span + 1):
            cell = chart[span - 1][start]
            for split in range(1, span):
                left = chart[split - 1][start]
                right = chart[span - split - 1][start + split]
                if not left or not right:
                    work += 1
                    continue
                for head, lhs, rhs in _BINARY_RULES:
                    work += 1
                    if lhs in left and rhs in right:
                        cell.add(head)
    return "S" in chart[n - 1][0], work
