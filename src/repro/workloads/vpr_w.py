"""175.vpr analog: simulated-annealing FPGA placement.

Section 4.3.4: placement "consists of repeated calls to try_swap in the
try_place function" — move a random block to a random position (swapping the
occupant), evaluate the bounding-box cost change of the affected nets, and
accept or revert.  The parallelization speculatively runs try_swap calls in
parallel; two sources of misspeculation are reproduced faithfully:

- *the pseudo-random number generator* — its seed recurrence would serialize
  everything; the Commutative annotation removes it (:class:`AcmRandom`);
- *block coordinates and net structures* — accepted swaps write them, and a
  later swap reading the same net or block has truly consumed a speculative
  value.  These dependences emerge from the real annealer below: early,
  hot-temperature iterations accept most moves ("the speculation fails more
  than 80% of the time") while late, cold iterations accept almost none
  ("succeeds more than 80% of the time"), so the parallelism is concentrated
  in the later outer-loop iterations — which is why the paper's best vpr
  speedup (3.59x) needs a moderate thread count (15).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import generate_netlist
from repro.workloads.rng import AcmRandom


class VprWorkload(Workload):
    """try_place over an annealing schedule; one task per try_swap call."""

    info = WorkloadInfo(
        name="175.vpr",
        loops=("try_place (place.c:506-513)",),
        exec_time_pct="100%",
        lines_changed_all=1,
        lines_changed_model=1,
        techniques=(
            "Commutative", "Alias, Value, & Control Speculation",
            "TLS Memory", "DSWP",
        ),
    )

    def __init__(self, seed: int = 175, grid: int = 24, cells: int = 150,
                 nets: int = 220, outer_iterations: int = 16,
                 moves_per_iteration: int = 130,
                 initial_temperature: float = 500.0,
                 cooling_rate: float = 0.7) -> None:
        self.initial_temperature = initial_temperature
        self.cooling_rate = cooling_rate
        self.grid = grid
        self.cells = cells
        self.netlist = generate_netlist(seed, cells, nets)
        self.outer_iterations = outer_iterations
        self.moves_per_iteration = moves_per_iteration
        self.seed = seed
        # nets touching each cell, precomputed once (like vpr's pin lookup)
        self.nets_of_cell: Dict[int, List[int]] = {c: [] for c in range(cells)}
        for net_index, members in enumerate(self.netlist):
            for cell in members:
                self.nets_of_cell[cell].append(net_index)

    def run(self, tracer: Tracer):
        rng = AcmRandom(self.seed, commutative=True)
        # Random (but deterministic) initial placement, as vpr's -place does.
        from repro.workloads.generators import Xorshift

        shuffler = Xorshift(self.seed * 13 + 5)
        slots = [(x, y) for y in range(self.grid) for x in range(self.grid)]
        for i in range(len(slots) - 1, 0, -1):
            j = shuffler.below(i + 1)
            slots[i], slots[j] = slots[j], slots[i]
        positions: List[Tuple[int, int]] = slots[: self.cells]
        occupancy: Dict[Tuple[int, int], int] = {
            location: cell for cell, location in enumerate(positions)
        }

        temperature = self.initial_temperature
        iteration = 0
        initial_cost = self._total_cost(positions)
        total_cost = initial_cost
        accepted_total = 0

        for outer in range(self.outer_iterations):
            for move in range(self.moves_per_iteration):
                with tracer.task("A", iteration):
                    tracer.work(1)

                with tracer.task("B", iteration):
                    accepted, delta, work = self._try_swap(
                        tracer, rng, positions, occupancy, temperature
                    )
                    tracer.work(work)
                    tracer.store("swap.outcome", iteration, value=accepted)
                    if accepted:
                        total_cost += delta
                        accepted_total += 1

                with tracer.task("C", iteration):
                    tracer.load("swap.outcome", iteration)
                    tracer.work(1)

                iteration += 1
            # vpr's schedule: geometric cooling with stage-dependent rate.
            temperature *= self.cooling_rate

        return {
            "initial_cost": round(initial_cost, 3),
            "final_cost": round(total_cost, 3),
            "accepted": accepted_total,
            "moves": iteration,
        }

    # -- the annealer ------------------------------------------------------------------

    def _try_swap(self, tracer: Tracer, rng: AcmRandom,
                  positions: List[Tuple[int, int]],
                  occupancy: Dict[Tuple[int, int], int],
                  temperature: float) -> Tuple[bool, float, int]:
        work = 4
        block = rng.below(self.cells)
        x, y = rng.below(self.grid), rng.below(self.grid)
        while (x, y) == positions[block]:
            x, y = rng.below(self.grid), rng.below(self.grid)
            work += 1
        other = occupancy.get((x, y))

        affected = list(self.nets_of_cell[block])
        if other is not None:
            affected.extend(self.nets_of_cell[other])
        affected = sorted(set(affected))

        tracer.load("block", block)
        if other is not None:
            tracer.load("block", other)
        before = 0.0
        for net in affected:
            tracer.load("net", net)
            before += self._net_cost(net, positions)
            work += 2 + len(self.netlist[net])

        old_block, old_other = positions[block], (x, y)
        positions[block] = (x, y)
        if other is not None:
            positions[other] = old_block

        after = sum(self._net_cost(net, positions) for net in affected)
        work += len(affected)
        delta = after - before

        accept = delta < 0 or rng.unit() < math.exp(
            -delta / max(temperature, 1e-9)
        )
        if accept:
            occupancy[old_other] = block
            if other is not None:
                occupancy[old_block] = other
            elif old_block in occupancy and occupancy[old_block] == block:
                del occupancy[old_block]
            tracer.store("block", block, value=positions[block])
            if other is not None:
                tracer.store("block", other, value=positions[other])
            for net in affected:
                tracer.store("net", net, value=iteration_tag(positions, net))
            work += len(affected)
            return True, delta, work

        # Revert.
        positions[block] = old_block
        if other is not None:
            positions[other] = old_other
        return False, 0.0, work

    def _net_cost(self, net: int, positions: List[Tuple[int, int]]) -> float:
        """Half-perimeter bounding box, vpr's placement cost."""
        xs = [positions[cell][0] for cell in self.netlist[net]]
        ys = [positions[cell][1] for cell in self.netlist[net]]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _total_cost(self, positions: List[Tuple[int, int]]) -> float:
        return sum(self._net_cost(net, positions) for net in range(len(self.netlist)))


def iteration_tag(positions: List[Tuple[int, int]], net: int) -> int:
    """A compact change marker for a net's stored value (silent-store aware)."""
    return hash(tuple(positions[cell] for cell in range(0, len(positions), 37)))
