"""300.twolf analog: standard-cell place-and-route annealing.

Section 4.3.3: the uloop/ucxx2 new-orientation loop is parallelized by
speculatively executing iterations of ``uloop`` in parallel.  Misspeculation
"comes from two sources, misprediction of the number of calls to the
pseudo-random number generator and memory alias violation on the block and
network structures."  The RNG dependence is removed with *Commutative*
(Figure 2 — this module's generator IS that figure's ``Yacm_random``);
the block/net conflicts remain and cap the speedup around 2x (Table 2:
2.06 at 8 threads).

Compared to the vpr analog this design is smaller and stays hot: cells are
swapped between *rows* (twolf's row-based placement), each move touches a
larger fraction of the netlist, and the schedule keeps acceptance high, so
cross-iteration conflicts stay dense throughout — the reason twolf scales
so much worse than vpr despite the similar algorithm.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import generate_netlist
from repro.workloads.rng import AcmRandom


class TwolfWorkload(Workload):
    """uloop: speculative parallel iterations of the cell-swap loop."""

    info = WorkloadInfo(
        name="300.twolf",
        loops=("uloop (uloop.c:154-361)",),
        exec_time_pct="100%",
        lines_changed_all=1,
        lines_changed_model=1,
        techniques=(
            "Commutative", "Alias & Control Speculation", "TLS Memory", "DSWP",
        ),
    )

    def __init__(self, seed: int = 300, rows: int = 8, cells: int = 120,
                 nets: int = 260, outer_iterations: int = 10,
                 moves_per_iteration: int = 120,
                 initial_temperature: float = 400.0,
                 cooling_rate: float = 0.75) -> None:
        self.rows = rows
        self.cells = cells
        self.netlist = generate_netlist(seed, cells, nets, max_pins=5)
        self.outer_iterations = outer_iterations
        self.moves_per_iteration = moves_per_iteration
        self.initial_temperature = initial_temperature
        self.cooling_rate = cooling_rate
        self.seed = seed
        self.row_width = (cells + rows - 1) // rows
        self.nets_of_cell: Dict[int, List[int]] = {c: [] for c in range(cells)}
        for net_index, members in enumerate(self.netlist):
            for cell in members:
                self.nets_of_cell[cell].append(net_index)

    def run(self, tracer: Tracer):
        rng = AcmRandom(self.seed, commutative=True)
        # slot[cell] = (row, column); random deterministic initial placement.
        from repro.workloads.generators import Xorshift

        shuffler = Xorshift(self.seed * 17 + 3)
        slots: List[Tuple[int, int]] = [
            (cell // self.row_width, cell % self.row_width)
            for cell in range(self.cells)
        ]
        for i in range(len(slots) - 1, 0, -1):
            j = shuffler.below(i + 1)
            slots[i], slots[j] = slots[j], slots[i]
        temperature = self.initial_temperature
        iteration = 0
        initial_cost = self._wirelength(slots)
        cost = initial_cost
        accepted = 0

        for outer in range(self.outer_iterations):
            for move in range(self.moves_per_iteration):
                with tracer.task("A", iteration):
                    tracer.work(1)

                with tracer.task("B", iteration):
                    took, delta, work = self._ucxx2(
                        tracer, rng, slots, temperature
                    )
                    tracer.work(work)
                    tracer.store("accept", iteration, value=took)
                    if took:
                        cost += delta
                        accepted += 1

                with tracer.task("C", iteration):
                    tracer.load("accept", iteration)
                    tracer.work(1)
                iteration += 1
            temperature *= self.cooling_rate

        return {
            "initial_wirelength": round(initial_cost, 3),
            "wirelength": round(cost, 3),
            "accepted": accepted,
            "moves": iteration,
        }

    def _ucxx2(self, tracer: Tracer, rng: AcmRandom,
               slots: List[Tuple[int, int]], temperature: float) -> Tuple[bool, float, int]:
        """Try exchanging two cells between rows (twolf's new-position move)."""
        work = 5
        a = rng.below(self.cells)
        b = rng.below(self.cells)
        while b == a:
            b = rng.below(self.cells)
            work += 1

        affected = sorted(set(self.nets_of_cell[a]) | set(self.nets_of_cell[b]))
        tracer.load("block", a)
        tracer.load("block", b)
        before = 0.0
        for net in affected:
            tracer.load("net", net)
            before += self._net_cost(net, slots)
            work += 2 + len(self.netlist[net])

        slots[a], slots[b] = slots[b], slots[a]
        after = sum(self._net_cost(net, slots) for net in affected)
        work += len(affected)
        delta = after - before

        if delta < 0 or rng.unit() < math.exp(-delta / max(temperature, 1e-9)):
            tracer.store("block", a, value=slots[a])
            tracer.store("block", b, value=slots[b])
            for net in affected:
                tracer.store("net", net, value=(slots[a], slots[b]))
            work += len(affected)
            return True, delta, work

        slots[a], slots[b] = slots[b], slots[a]
        return False, 0.0, work

    def _net_cost(self, net: int, slots: List[Tuple[int, int]]) -> float:
        """Row-aware half perimeter: vertical span is weighted by row pitch."""
        rows = [slots[cell][0] for cell in self.netlist[net]]
        cols = [slots[cell][1] for cell in self.netlist[net]]
        return (max(cols) - min(cols)) + 4.0 * (max(rows) - min(rows))

    def _wirelength(self, slots: List[Tuple[int, int]]) -> float:
        return sum(self._net_cost(net, slots) for net in range(len(self.netlist)))
