"""181.mcf analog: network-simplex vehicle scheduling.

Section 4.1.4: mcf's time splits between ``primal_net_simplex`` (65-75%,
pivoting — hard to scale) and ``price_out_impl`` (25-35%, arc pricing —
parallel with alias speculation).  The reproduction drives the real solver
in :mod:`repro.workloads.mcf_solver` one *pricing chunk* per pipeline
iteration:

- **phase A** of a round's first chunk applies the previous round's pivot:
  cycle walk, flow push, basis exchange, ``refresh_potential`` — the
  sequential backbone (the paper speculates refresh_potential "will not
  change the actual potential of any node, which is almost always the
  case"; the trace records exactly which potentials each refresh touched);
- **phase B** prices one chunk of arcs against the current potentials;
  a chunk whose arcs' potentials were rewritten by a recent pivot carries a
  real dependence — the misspeculation that, with the small parallel
  fraction, caps mcf at 2.84x in the paper;
- **phase C** folds the chunk's best candidate into the round's choice.

Output: the optimal objective, cross-checked optimal (zero artificial
flow), matching networkx in the unit tests.
"""

from __future__ import annotations

from typing import Optional

from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import generate_flow_network
from repro.workloads.mcf_solver import NetworkSimplex


class McfWorkload(Workload):
    """global_opt: chunked pricing + sequential pivoting."""

    info = WorkloadInfo(
        name="181.mcf",
        loops=(
            "price_out_impl (implicit.c:228-273)",
            "primal_net_simplex (psimplex.c:50-138)",
            "primal_bea_mpp (pbeampp.c:161-172)",
            "primal_bea_mpp (pbeampp.c:181-195)",
        ),
        exec_time_pct=("25%", "75%", "4%", "20%"),
        lines_changed_all=0,
        lines_changed_model=0,
        techniques=(
            "Alias & Control Speculation", "Control & Silent Store Speculation",
            "TLS Memory", "DSWP", "Nested",
        ),
    )

    def __init__(self, seed: int = 181, nodes: int = 120,
                 arcs_per_node: int = 8, chunk_size: int = 64,
                 max_rounds: int = 260) -> None:
        self.supplies, self.arcs = generate_flow_network(seed, nodes, arcs_per_node)
        self.chunk_size = chunk_size
        self.max_rounds = max_rounds

    def run(self, tracer: Tracer):
        solver = NetworkSimplex(self.supplies, self.arcs)
        chunk_count = (solver.real_arc_count + self.chunk_size - 1) // self.chunk_size

        iteration = 0
        pending_entering: Optional[int] = None
        rounds = 0

        while rounds < self.max_rounds:
            round_best: Optional[int] = None
            round_violation = 0
            for chunk in range(chunk_count):
                start = chunk * self.chunk_size
                end = start + self.chunk_size

                with tracer.task("A", iteration):
                    if chunk == 0:
                        tracer.load("simplex", "entering_choice")
                        if pending_entering is not None:
                            before_pi = list(solver.potential)
                            result = solver.pivot(pending_entering)
                            # mcf calls refresh_potential over the whole
                            # tree; most recomputed potentials are unchanged
                            # — silent stores that trigger no dependence
                            # (Section 2.1).  Sample the recomputed nodes;
                            # the tracer's silent-store detection separates
                            # the truly changed ones.
                            for node in range(0, len(before_pi) - 1, 4):
                                tracer.store(
                                    "pi", node, value=solver.potential[node]
                                )
                            # Pivot work plus the full-tree refresh mcf pays.
                            tracer.work(result.work + 3 * (len(before_pi) - 1))
                            pending_entering = None
                        else:
                            tracer.work(1)
                    else:
                        tracer.work(1)

                with tracer.task("B", iteration):
                    candidate, violation, work = solver.scan_chunk(start, end)
                    # Pricing reads the potentials of the chunk's arc
                    # endpoints; sample one endpoint per few arcs.
                    for arc in range(start, min(end, solver.real_arc_count), 8):
                        tracer.load("pi", solver.tail[arc])
                    tracer.store("price.candidate", iteration, value=candidate)
                    tracer.work(work)

                with tracer.task("C", iteration):
                    tracer.load("price.candidate", iteration)
                    if candidate is not None and violation > round_violation:
                        round_best = candidate
                        round_violation = violation
                    if chunk == chunk_count - 1:
                        tracer.store(
                            "simplex", "entering_choice", value=round_best
                        )
                    tracer.work(1)

                iteration += 1

            rounds += 1
            if round_best is None:
                if solver.degenerate_streak > 50:
                    # Bland fallback outside the chunked scan.
                    round_best = solver.find_entering_arc()
                    if round_best is None:
                        break
                else:
                    break
            pending_entering = round_best

        # Drain any remaining pivots outside the traced region (the traced
        # loop covers the dominant fraction; mcf runs to true optimality).
        objective = solver.solve()
        return {
            "objective": objective,
            "pivots": solver.pivots,
            "optimal": solver.is_optimal(),
            "artificial_flow": solver.artificial_flow(),
            "rounds": rounds,
        }
