"""The full benchmark suite: all eleven SPEC CINT2000 C analogs.

``SUITE`` maps the SPEC name to a zero-argument factory; factories (rather
than instances) keep benchmark runs independent — each evaluation gets a
fresh workload with freshly seeded inputs.

``PAPER_TABLE2`` records the paper's Table 2 for comparison in
EXPERIMENTS.md and the table-2 benchmark: (best speedup, min threads at
which it occurs).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads.base import Workload
from repro.workloads.bzip2_w import Bzip2Workload
from repro.workloads.crafty_w import CraftyWorkload
from repro.workloads.gap_w import GapWorkload
from repro.workloads.gcc_w import GccWorkload
from repro.workloads.gzip_w import GzipWorkload
from repro.workloads.mcf_w import McfWorkload
from repro.workloads.parser_w import ParserWorkload
from repro.workloads.perlbmk_w import PerlbmkWorkload
from repro.workloads.twolf_w import TwolfWorkload
from repro.workloads.vortex_w import VortexWorkload
from repro.workloads.vpr_w import VprWorkload

SUITE: Dict[str, Callable[[], Workload]] = {
    "164.gzip": GzipWorkload,
    "175.vpr": VprWorkload,
    "176.gcc": GccWorkload,
    "181.mcf": McfWorkload,
    "186.crafty": CraftyWorkload,
    "197.parser": ParserWorkload,
    "253.perlbmk": PerlbmkWorkload,
    "254.gap": GapWorkload,
    "255.vortex": VortexWorkload,
    "256.bzip2": Bzip2Workload,
    "300.twolf": TwolfWorkload,
}

#: Figure membership, as in the paper's evaluation section.
FIGURE4 = ["181.mcf", "253.perlbmk", "255.vortex", "256.bzip2"]
FIGURE5 = ["176.gcc", "254.gap"]
FIGURE6 = ["186.crafty", "197.parser", "300.twolf", "175.vpr"]
FIGURE7 = ["164.gzip"]

#: Table 2 of the paper: benchmark -> (# threads, speedup).
PAPER_TABLE2: Dict[str, Tuple[int, float]] = {
    "164.gzip": (32, 29.91),
    "175.vpr": (15, 3.59),
    "176.gcc": (16, 5.06),
    "181.mcf": (32, 2.84),
    "186.crafty": (32, 25.18),
    "197.parser": (32, 24.50),
    "253.perlbmk": (5, 1.21),
    "254.gap": (10, 1.94),
    "255.vortex": (32, 4.92),
    "256.bzip2": (12, 6.72),
    "300.twolf": (8, 2.06),
}


def suite_names() -> List[str]:
    return list(SUITE)


def exec_names() -> List[str]:
    """Benchmarks that can run for real on the multiprocess engine."""
    return [name for name, factory in SUITE.items() if factory.has_exec_spec]


def make_workload(name: str) -> Workload:
    try:
        return SUITE[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(SUITE)}") from None
