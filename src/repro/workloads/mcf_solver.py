"""A capacitated network-simplex min-cost-flow solver.

181.mcf solves single-depot vehicle scheduling as min-cost flow with the
primal network simplex.  This is a from-scratch implementation of that
algorithm — spanning-tree basis, node potentials, Dantzig pricing with a
Bland anti-cycling fallback, pivots with subtree re-rooting and potential
refresh — structured so the mcf workload can drive it one pricing chunk /
one pivot at a time, mirroring the paper's ``price_out_impl`` (arc pricing)
and ``primal_net_simplex`` (pivoting, ``refresh_potential``) loops.

Correctness is cross-validated against ``networkx.min_cost_flow`` in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

_BIG_COST = 10 ** 7

#: Arc basis states.
TREE, LOWER, UPPER = 0, 1, 2


@dataclass
class PivotResult:
    """What one pivot did: for the workload's potential-store instrumentation."""

    entering_arc: int
    leaving_arc: int
    delta: int
    changed_nodes: List[int]
    work: int
    degenerate: bool


class NetworkSimplex:
    """Primal network simplex over (tail, head, capacity, cost) arcs.

    ``supplies[i] > 0`` means node *i* ships ``supplies[i]`` units.  An
    artificial root (index ``n``) with big-cost artificial arcs provides the
    initial feasible spanning tree.
    """

    def __init__(self, supplies: Sequence[int], arcs: Sequence[Tuple[int, int, int, int]]) -> None:
        if sum(supplies) != 0:
            raise ValueError("supplies must sum to zero")
        self.n = len(supplies)
        self.root = self.n
        self.supplies = list(supplies)

        self.tail: List[int] = []
        self.head: List[int] = []
        self.capacity: List[int] = []
        self.cost: List[int] = []
        for tail, head, capacity, cost in arcs:
            if not (0 <= tail < self.n and 0 <= head < self.n):
                raise ValueError(f"arc ({tail},{head}) out of range")
            if tail == head:
                raise ValueError("self-loop arcs are not allowed")
            self.tail.append(tail)
            self.head.append(head)
            self.capacity.append(capacity)
            self.cost.append(cost)
        self.real_arc_count = len(self.tail)

        # Artificial arcs: supply nodes point at the root, others hang off it.
        for node in range(self.n):
            if self.supplies[node] > 0:
                self.tail.append(node)
                self.head.append(self.root)
            else:
                self.tail.append(self.root)
                self.head.append(node)
            self.capacity.append(abs(self.supplies[node]) or 1)
            self.cost.append(_BIG_COST)

        total = len(self.tail)
        self.flow = [0] * total
        self.state = [LOWER] * total
        self.parent: List[Optional[int]] = [None] * (self.n + 1)
        self.parent_arc: List[Optional[int]] = [None] * (self.n + 1)
        self.potential = [0] * (self.n + 1)
        self.pivots = 0
        self.degenerate_streak = 0

        for node in range(self.n):
            arc = self.real_arc_count + node
            self.state[arc] = TREE
            self.flow[arc] = abs(self.supplies[node])
            self.parent[node] = self.root
            self.parent_arc[node] = arc
        self._refresh_potentials_from(self.root)

    # -- pricing ---------------------------------------------------------------------

    def reduced_cost(self, arc: int) -> int:
        return self.cost[arc] - self.potential[self.tail[arc]] + self.potential[self.head[arc]]

    def arc_is_eligible(self, arc: int) -> bool:
        if self.state[arc] == LOWER:
            return self.reduced_cost(arc) < 0
        if self.state[arc] == UPPER:
            return self.reduced_cost(arc) > 0
        return False

    def scan_chunk(self, start: int, end: int) -> Tuple[Optional[int], int, int]:
        """Dantzig pricing over arcs [start, end).

        Returns (best arc or None, its |reduced cost|, work units).
        Only real arcs are priced; artificial arcs never re-enter.
        """
        best_arc: Optional[int] = None
        best_violation = 0
        work = 0
        for arc in range(start, min(end, self.real_arc_count)):
            work += 1
            state = self.state[arc]
            if state == TREE:
                continue
            rc = self.reduced_cost(arc)
            violation = -rc if state == LOWER else rc
            if violation > best_violation:
                best_violation = violation
                best_arc = arc
        return best_arc, best_violation, work

    def find_entering_arc(self) -> Optional[int]:
        if self.degenerate_streak > 50:
            # Bland's rule: smallest eligible index — breaks pivot cycles.
            for arc in range(self.real_arc_count):
                if self.arc_is_eligible(arc):
                    return arc
            return None
        best, violation, _ = self.scan_chunk(0, self.real_arc_count)
        return best

    # -- pivoting ---------------------------------------------------------------------

    def pivot(self, entering: int) -> PivotResult:
        """Push flow around the entering arc's cycle; swap basis arcs."""
        work = 4
        forward = self.state[entering] == LOWER  # push tail->head
        source = self.tail[entering] if forward else self.head[entering]
        sink = self.head[entering] if forward else self.tail[entering]

        path_up_source, path_up_sink, ancestor, walk_work = self._cycle(source, sink)
        work += walk_work

        # Bottleneck: entering residual, then residuals along both legs.
        delta = self.capacity[entering] - self.flow[entering] if forward else self.flow[entering]
        leaving = entering
        leaving_on_source_leg = True

        # Source leg: flow moves from `source` toward the ancestor — each tree
        # arc is traversed *against* the direction child->parent orientation
        # if the arc points up, etc.  Residual depends on geometry.
        # The cycle runs: source --entering--> sink --up--> ancestor --down--> source.
        # Source leg (node -> parent edges): the cycle traverses them
        # DOWNWARD (ancestor toward source), so an arc oriented
        # child->parent (tail == node) has its flow *decreased*.
        for node in path_up_source:
            arc = self.parent_arc[node]
            residual = (
                self.flow[arc]
                if self.tail[arc] == node
                else self.capacity[arc] - self.flow[arc]
            )
            work += 1
            if residual < delta:
                delta = residual
                leaving = arc
                leaving_on_source_leg = True

        # Sink leg: traversed UPWARD (sink toward ancestor), so an arc
        # oriented child->parent (tail == node) has its flow *increased*.
        for node in path_up_sink:
            arc = self.parent_arc[node]
            residual = (
                self.capacity[arc] - self.flow[arc]
                if self.tail[arc] == node
                else self.flow[arc]
            )
            work += 1
            if residual < delta:
                delta = residual
                leaving = arc
                leaving_on_source_leg = False

        # Apply the push.
        if forward:
            self.flow[entering] += delta
        else:
            self.flow[entering] -= delta
        for node in path_up_source:
            arc = self.parent_arc[node]
            self.flow[arc] += -delta if self.tail[arc] == node else delta
            work += 1
        for node in path_up_sink:
            arc = self.parent_arc[node]
            self.flow[arc] += delta if self.tail[arc] == node else -delta
            work += 1

        degenerate = delta == 0
        self.degenerate_streak = self.degenerate_streak + 1 if degenerate else 0
        self.pivots += 1

        if leaving == entering:
            # The entering arc saturated: it flips bound without entering the basis.
            self.state[entering] = UPPER if forward else LOWER
            return PivotResult(entering, leaving, delta, [], work, degenerate)

        # Basis exchange: detach the subtree cut off by the leaving arc and
        # re-root it at the entering arc's endpoint inside it.
        leaving_child = (
            self._lower_endpoint(leaving, path_up_source)
            if leaving_on_source_leg
            else self._lower_endpoint(leaving, path_up_sink)
        )
        entering_inside = source if leaving_on_source_leg else sink
        entering_outside = sink if leaving_on_source_leg else source

        self.state[leaving] = UPPER if self.flow[leaving] >= self.capacity[leaving] else LOWER
        self.state[entering] = TREE

        self._reroot(entering_inside, leaving_child)
        self.parent[entering_inside] = entering_outside
        self.parent_arc[entering_inside] = entering
        changed = self._refresh_potentials_from(entering_inside)
        work += 2 * len(changed) + 4
        return PivotResult(entering, leaving, delta, changed, work, degenerate)

    def _cycle(self, source: int, sink: int) -> Tuple[List[int], List[int], int, int]:
        """Paths from source and sink up to their common ancestor."""
        work = 0
        ancestors: Set[int] = set()
        node: Optional[int] = source
        while node is not None:
            ancestors.add(node)
            node = self.parent[node]
            work += 1
        node = sink
        while node not in ancestors:
            node = self.parent[node]
            work += 1
        common = node

        path_source: List[int] = []
        node = source
        while node != common:
            path_source.append(node)
            node = self.parent[node]
        path_sink: List[int] = []
        node = sink
        while node != common:
            path_sink.append(node)
            node = self.parent[node]
        return path_source, path_sink, common, work

    def _lower_endpoint(self, arc: int, leg: List[int]) -> int:
        """The leg node whose parent arc is ``arc`` (the subtree side)."""
        for node in leg:
            if self.parent_arc[node] == arc:
                return node
        raise RuntimeError("leaving arc not found on its leg")

    def _reroot(self, new_root: int, old_subroot: int) -> None:
        """Reverse parent pointers along new_root -> ... -> old_subroot."""
        chain: List[int] = []
        node = new_root
        while True:
            chain.append(node)
            if node == old_subroot:
                break
            node = self.parent[node]
        previous_parent: Optional[int] = None
        previous_arc: Optional[int] = None
        for node in chain:
            next_parent = self.parent[node]
            next_arc = self.parent_arc[node]
            self.parent[node] = previous_parent
            self.parent_arc[node] = previous_arc
            previous_parent = node
            previous_arc = next_arc
        # new_root's parent gets set by the caller (the entering arc).

    def _refresh_potentials_from(self, subroot: int) -> List[int]:
        """refresh_potential: recompute π below ``subroot`` from the tree.

        Returns nodes whose potential was (re)computed — the paper
        speculates these rarely actually change (Section 4.1.4).
        """
        children: List[List[int]] = [[] for _ in range(self.n + 1)]
        for node in range(self.n):
            parent = self.parent[node]
            if parent is not None:
                children[parent].append(node)

        changed: List[int] = []
        if subroot == self.root:
            self.potential[self.root] = 0
        else:
            parent = self.parent[subroot]
            arc = self.parent_arc[subroot]
            self.potential[subroot] = self._potential_from(parent, arc, subroot)
        stack = [subroot]
        while stack:
            node = stack.pop()
            changed.append(node)
            for child in children[node]:
                arc = self.parent_arc[child]
                self.potential[child] = self._potential_from(node, arc, child)
                stack.append(child)
        return changed

    def _potential_from(self, parent: int, arc: int, child: int) -> int:
        # Tree arcs have zero reduced cost: c - π_tail + π_head == 0.
        if self.tail[arc] == child:
            return self.cost[arc] + self.potential[self.head[arc]]
        return self.potential[self.tail[arc]] - self.cost[arc]

    # -- solution-level API ----------------------------------------------------------------

    def solve(self, max_pivots: int = 100_000) -> int:
        """Run to optimality; return the objective over real arcs."""
        while self.pivots < max_pivots:
            entering = self.find_entering_arc()
            if entering is None:
                break
            self.pivot(entering)
        return self.objective()

    def objective(self) -> int:
        return sum(
            self.flow[arc] * self.cost[arc] for arc in range(self.real_arc_count)
        )

    def artificial_flow(self) -> int:
        """Remaining flow on artificial arcs (0 at a genuine optimum)."""
        return sum(
            self.flow[arc]
            for arc in range(self.real_arc_count, len(self.flow))
        )

    def is_optimal(self) -> bool:
        return all(not self.arc_is_eligible(a) for a in range(self.real_arc_count))
