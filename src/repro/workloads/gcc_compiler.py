"""A mini-C compiler front end and code generator, built on :mod:`repro.ir`.

This is the substrate of the 176.gcc workload analog: a real (small)
compiler — tokenizer, recursive-descent parser, AST, lowering to the
package's own IR, the scalar pass pipeline of :mod:`repro.ir.transforms`,
and a textual code generator with function-local label numbering (the
paper's ``label_num`` fix, Section 4.2.1: labels become *(function, number)*
pairs, so the assembly differs only in label spelling — semantically,
though not syntactically, equivalent output).

Grammar (statements end with ';', blocks with braces)::

    function := 'func' NAME '(' params ')' '{' statement* '}'
    statement := NAME '=' expr ';'
               | 'while' '(' expr ')' '{' statement* '}'
               | 'if' '(' expr ')' '{' statement* '}' ('else' '{' statement* '}')?
               | 'return' expr ';'
    expr := comparison over + - * with parentheses, names, integers
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.transforms import run_pass_pipeline
from repro.ir.values import MemoryObject
from repro.workloads.generators import Xorshift

# ---------------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------------

def generate_source(seed: int, function_count: int = 40) -> str:
    """A compilation unit of ``function_count`` functions with skewed sizes."""
    rng = Xorshift(seed)
    functions: List[str] = []
    for index in range(function_count):
        # Heavy tail: a few big functions dominate, as in real C files.
        draw = rng.below(100)
        if draw < 60:
            statements = 4 + rng.below(8)
        elif draw < 90:
            statements = 12 + rng.below(20)
        else:
            statements = 40 + rng.below(50)
        functions.append(_generate_function(rng, f"fn{index}", statements))
    return "\n\n".join(functions)


def _generate_function(rng: Xorshift, name: str, statement_count: int) -> str:
    params = ["a", "b"]
    variables = params + ["x", "y", "z", "t"]
    lines = [f"func {name}(a, b) {{"]
    lines.append("  x = a + 1; y = b * 2; z = 0; t = 3;")
    produced = 0
    depth = 1
    while produced < statement_count:
        choice = rng.below(100)
        indent = "  " * depth
        if choice < 55 or depth >= 3:
            target = variables[2 + rng.below(4)]
            lines.append(f"{indent}{target} = {_generate_expr(rng, variables)};")
            produced += 1
        elif choice < 75:
            # The loop variable is also the decremented one, so every
            # generated loop terminates (the interpreter-based tests run
            # these functions to completion).
            bound_var = variables[2 + rng.below(4)]
            lines.append(f"{indent}while ({bound_var} > {rng.below(9)}) {{")
            lines.append(f"{indent}  {bound_var} = {bound_var} - {1 + rng.below(3)};")
            body_target = variables[2 + rng.below(4)]
            if body_target != bound_var:
                lines.append(
                    f"{indent}  {body_target} = {body_target} + {bound_var};"
                )
            lines.append(f"{indent}}}")
            produced += 2
        else:
            lines.append(
                f"{indent}if ({_generate_expr(rng, variables)} > {rng.below(50)}) {{"
            )
            target = variables[2 + rng.below(4)]
            lines.append(f"{indent}  {target} = {_generate_expr(rng, variables)};")
            lines.append(f"{indent}}} else {{")
            lines.append(f"{indent}  {target} = {rng.below(100)};")
            lines.append(f"{indent}}}")
            produced += 2
    lines.append("  return x + y;")
    lines.append("}")
    return "\n".join(lines)


def _generate_expr(rng: Xorshift, variables: List[str]) -> str:
    terms = []
    for _ in range(1 + rng.below(3)):
        if rng.chance(0.5):
            terms.append(variables[rng.below(len(variables))])
        else:
            terms.append(str(rng.below(64)))
    ops = ["+", "-", "*"]
    expr = terms[0]
    for term in terms[1:]:
        expr = f"{expr} {ops[rng.below(3)]} {term}"
    return expr


# ---------------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------------

_KEYWORDS = {"func", "while", "if", "else", "return"}
_SYMBOLS = {"(", ")", "{", "}", ";", ",", "=", "+", "-", "*", ">", "<"}


def tokenize(source: str) -> List[Tuple[str, str]]:
    """(kind, text) tokens; kinds: kw, name, int, sym."""
    tokens: List[Tuple[str, str]] = []
    i = 0
    while i < len(source):
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < len(source) and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(("kw" if word in _KEYWORDS else "name", word))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < len(source) and source[j].isdigit():
                j += 1
            tokens.append(("int", source[i:j]))
            i = j
            continue
        if ch in _SYMBOLS:
            tokens.append(("sym", ch))
            i += 1
            continue
        raise SyntaxError(f"unexpected character {ch!r} at offset {i}")
    return tokens


# ---------------------------------------------------------------------------------
# Parser -> AST  (tuples: ("assign", name, expr), ("while", cond, body), ...)
# ---------------------------------------------------------------------------------

class Parser:
    """Recursive-descent parser over the token stream; produces tuple ASTs."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def _peek(self) -> Tuple[str, str]:
        return self.tokens[self.position] if self.position < len(self.tokens) else ("eof", "")

    def _take(self, kind: Optional[str] = None, text: Optional[str] = None) -> Tuple[str, str]:
        token = self._peek()
        if kind is not None and token[0] != kind:
            raise SyntaxError(f"expected {kind}, got {token}")
        if text is not None and token[1] != text:
            raise SyntaxError(f"expected {text!r}, got {token}")
        self.position += 1
        return token

    def parse_unit(self) -> List[Tuple]:
        functions = []
        while self._peek()[0] != "eof":
            functions.append(self.parse_function())
        return functions

    def parse_function(self) -> Tuple:
        self._take("kw", "func")
        name = self._take("name")[1]
        self._take("sym", "(")
        params = []
        while self._peek() != ("sym", ")"):
            params.append(self._take("name")[1])
            if self._peek() == ("sym", ","):
                self._take()
        self._take("sym", ")")
        body = self.parse_block()
        return ("function", name, params, body)

    def parse_block(self) -> List[Tuple]:
        self._take("sym", "{")
        statements = []
        while self._peek() != ("sym", "}"):
            statements.append(self.parse_statement())
        self._take("sym", "}")
        return statements

    def parse_statement(self) -> Tuple:
        kind, text = self._peek()
        if (kind, text) == ("kw", "while"):
            self._take()
            self._take("sym", "(")
            condition = self.parse_expression()
            self._take("sym", ")")
            return ("while", condition, self.parse_block())
        if (kind, text) == ("kw", "if"):
            self._take()
            self._take("sym", "(")
            condition = self.parse_expression()
            self._take("sym", ")")
            then_body = self.parse_block()
            else_body: List[Tuple] = []
            if self._peek() == ("kw", "else"):
                self._take()
                else_body = self.parse_block()
            return ("if", condition, then_body, else_body)
        if (kind, text) == ("kw", "return"):
            self._take()
            value = self.parse_expression()
            self._take("sym", ";")
            return ("return", value)
        name = self._take("name")[1]
        self._take("sym", "=")
        value = self.parse_expression()
        self._take("sym", ";")
        return ("assign", name, value)

    def parse_expression(self) -> Tuple:
        left = self.parse_additive()
        while self._peek()[1] in (">", "<"):
            op = self._take()[1]
            right = self.parse_additive()
            left = ("cmp", "gt" if op == ">" else "lt", left, right)
        return left

    def parse_additive(self) -> Tuple:
        left = self.parse_multiplicative()
        while self._peek()[1] in ("+", "-"):
            op = self._take()[1]
            right = self.parse_multiplicative()
            left = ("bin", "add" if op == "+" else "sub", left, right)
        return left

    def parse_multiplicative(self) -> Tuple:
        left = self.parse_primary()
        while self._peek()[1] == "*":
            self._take()
            right = self.parse_primary()
            left = ("bin", "mul", left, right)
        return left

    def parse_primary(self) -> Tuple:
        kind, text = self._peek()
        if kind == "int":
            self._take()
            return ("const", int(text))
        if kind == "name":
            self._take()
            return ("var", text)
        if (kind, text) == ("sym", "("):
            self._take()
            inner = self.parse_expression()
            self._take("sym", ")")
            return inner
        raise SyntaxError(f"unexpected token {self._peek()}")


# ---------------------------------------------------------------------------------
# Lowering: AST -> repro.ir
# ---------------------------------------------------------------------------------

class Lowerer:
    """Lowers one parsed function to IR; locals live in memory objects."""

    def __init__(self) -> None:
        self.block_counter = 0
        self.work = 0

    def lower(self, ast: Tuple) -> Function:
        _, name, params, body = ast
        from repro.ir.types import IntType

        function = Function(name, [IntType(64)] * len(params), list(params))
        builder = FunctionBuilder(function)
        builder.block("entry")
        self.variables: Dict[str, MemoryObject] = {}
        for index, param in enumerate(params):
            slot = MemoryObject(f"{name}.{param}")
            self.variables[param] = slot
            builder.store(builder.param(index), slot, [slot])
            self.work += 2
        self._lower_body(builder, name, body)
        if builder.current.terminator is None:
            builder.ret(0)
        return function

    def _fresh_block(self, prefix: str) -> str:
        self.block_counter += 1
        return f"{prefix}{self.block_counter}"

    def _slot(self, function_name: str, var: str) -> MemoryObject:
        if var not in self.variables:
            self.variables[var] = MemoryObject(f"{function_name}.{var}")
        return self.variables[var]

    def _lower_body(self, builder: FunctionBuilder, fname: str, body: List[Tuple]) -> None:
        for statement in body:
            self.work += 3
            kind = statement[0]
            if kind == "assign":
                _, name, expr = statement
                value = self._lower_expr(builder, fname, expr)
                slot = self._slot(fname, name)
                builder.store(value, slot, [slot])
            elif kind == "return":
                builder.ret(self._lower_expr(builder, fname, statement[1]))
                # Statements after a return are unreachable; park them in a
                # fresh block so the IR stays well formed.
                builder.block(self._fresh_block("dead"))
            elif kind == "while":
                _, condition, loop_body = statement
                header = self._fresh_block("while")
                body_name = self._fresh_block("body")
                exit_name = self._fresh_block("endwhile")
                builder.jump(header)
                builder.block(header)
                test = self._lower_expr(builder, fname, condition)
                builder.branch(test, body_name, exit_name)
                builder.block(body_name)
                self._lower_body(builder, fname, loop_body)
                if builder.current.terminator is None:
                    builder.jump(header)
                builder.block(exit_name)
            elif kind == "if":
                _, condition, then_body, else_body = statement
                then_name = self._fresh_block("then")
                else_name = self._fresh_block("else")
                join_name = self._fresh_block("join")
                test = self._lower_expr(builder, fname, condition)
                builder.branch(test, then_name, else_name)
                builder.block(then_name)
                self._lower_body(builder, fname, then_body)
                if builder.current.terminator is None:
                    builder.jump(join_name)
                builder.block(else_name)
                self._lower_body(builder, fname, else_body)
                if builder.current.terminator is None:
                    builder.jump(join_name)
                builder.block(join_name)
            else:
                raise ValueError(f"unknown statement {kind}")

    def _lower_expr(self, builder: FunctionBuilder, fname: str, expr: Tuple):
        self.work += 1
        kind = expr[0]
        if kind == "const":
            from repro.ir.values import Constant

            return Constant(expr[1])
        if kind == "var":
            slot = self._slot(fname, expr[1])
            return builder.load(slot, [slot])
        if kind in ("bin", "cmp"):
            _, op, left, right = expr
            lhs = self._lower_expr(builder, fname, left)
            rhs = self._lower_expr(builder, fname, right)
            return builder.binop(op, lhs, rhs)
        raise ValueError(f"unknown expression {kind}")


# ---------------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------------

def generate_assembly(function: Function, function_index: int) -> Tuple[List[str], int]:
    """Textual assembly with (function, number) labels; returns (lines, work)."""
    lines = [f".globl {function.name}", f"{function.name}:"]
    work = 2
    label_numbers: Dict[str, str] = {}
    for number, block in enumerate(function.blocks):
        label_numbers[block.name] = f".L{function_index}_{number}"
    for block in function.blocks:
        lines.append(f"{label_numbers[block.name]}:")
        for instruction in block.instructions:
            rendered = repr(instruction)
            for name, label in label_numbers.items():
                rendered = rendered.replace(name, label)
            lines.append(f"    {rendered}")
            work += 1
    return lines, work


def compile_function(source_ast: Tuple, function_index: int,
                     optimization_rounds: int = 3):
    """Lower, optimize and codegen one function.

    Returns (assembly lines, statistics dict, work units) — the unit of
    phase-B work in the gcc workload.
    """
    from repro.ir.ssa import promote_memory_to_registers

    lowerer = Lowerer()
    function = lowerer.lower(source_ast)
    size_before = sum(1 for _ in function.instructions())
    promoted = promote_memory_to_registers(function)
    stats = run_pass_pipeline(function, rounds=optimization_rounds)
    stats["mem2reg"] = promoted
    size_after = sum(1 for _ in function.instructions())
    assembly, gen_work = generate_assembly(function, function_index)
    # Pass cost: each round walks the whole function several times, and gcc's
    # passes are superlinear in practice.
    pass_work = optimization_rounds * (size_before * 4 + size_before ** 2 // 16)
    work = lowerer.work + pass_work + gen_work
    stats.update({"size_before": size_before, "size_after": size_after})
    return assembly, stats, work
