"""256.bzip2 analog: Burrows-Wheeler block compression.

Section 4.1.1: bzip2 compresses "in independent blocks of the same size"
(100-900 KB depending on level); the DSWP parallelization reads blocks in
phase A, runs ``doReversibleTransformation`` + ``moveToFrontCodeAndSend`` in
replicated phase B, and buffers writes "until the position of the writes are
known in phase C".  "The only limitation to performance is the input file's
size ... only a few independent blocks exist to compress in parallel."

The analog implements the real algorithm chain:

1. **BWT** via a prefix-doubling suffix array (O(n log² n), no external
   libraries) over the block plus a unique sentinel;
2. **move-to-front** coding;
3. **run-length + Huffman** sizing: RLE of MTF zeros, then an exact Huffman
   tree over the symbol histogram gives the output bit count.

No cross-block dependences exist at all — the parallelism cap comes purely
from the block count, exactly as in the paper.
"""

from __future__ import annotations

from functools import partial
from heapq import heapify, heappop, heappush
from typing import Dict, List, Tuple

from repro.profiling.tracer import Tracer
from repro.workloads.base import OutputComparison, Workload, WorkloadInfo
from repro.workloads.generators import generate_text


class Bzip2Workload(Workload):
    """compressStream over a handful of independent blocks."""

    info = WorkloadInfo(
        name="256.bzip2",
        loops=("compressStream (bzip2.c:2870-2919)",),
        exec_time_pct="100%",
        lines_changed_all=0,
        lines_changed_model=0,
        techniques=("TLS Memory", "DSWP"),
    )

    def __init__(self, seed: int = 256, block_size: int = 24 * 1024,
                 blocks: int = 7) -> None:
        self.block_size = block_size
        self.text = generate_text(seed, block_size * blocks)

    def run(self, tracer: Tracer):
        data = self.text
        total_bits = 0
        checksum = 0
        iteration = 0
        position = 0

        while position < len(data):
            with tracer.task("A", iteration):
                block = data[position:position + self.block_size]
                # The block variable is privatized by the TLS memory
                # subsystem (Section 4.1.1) — each iteration's copy is its
                # own; only the read cost appears here.
                tracer.store("block", iteration, value=position)
                tracer.work(max(1, len(block) // 512))

            with tracer.task("B", iteration):
                tracer.load("block", iteration)
                bits, block_checksum, work = self._compress_block(block)
                tracer.store("outbuf", iteration, value=bits)
                tracer.work(work)

            with tracer.task("C", iteration):
                # Writes land in the output stream once positions are known.
                tracer.load("outbuf", iteration)
                total_bits += bits
                checksum = (checksum * 37 + block_checksum) % (1 << 32)
                tracer.work(max(1, bits // 8192))

            position += self.block_size
            iteration += 1

        return {
            "compressed_bits": total_bits,
            "checksum": checksum,
            "blocks": iteration,
        }

    # -- real execution on the multiprocess engine ----------------------------------

    has_exec_spec = True

    def exec_spec(self):
        """Run the block loop for real: A slices, B compresses, C commits.

        No cross-block state exists, so phase B is pure — the first genuine
        wall-clock-parallel target, exactly as Section 4.1.1 predicts.
        """
        from repro.exec.engine import PipelineSpec

        iterations = (len(self.text) + self.block_size - 1) // self.block_size
        return PipelineSpec(
            iterations=iterations,
            produce=partial(_exec_produce, self.text, self.block_size),
            work=_exec_work,
            init=_exec_init,
            commit=_exec_commit,
        )

    # -- the algorithm chain --------------------------------------------------------

    def _compress_block(self, block: bytes) -> Tuple[int, int, int]:
        """(output bits, checksum, work units) for one block."""
        return compress_block(block)


def compress_block(block: bytes) -> Tuple[int, int, int]:
    """(output bits, checksum, work units) for one block."""
    bwt, bwt_work = burrows_wheeler_transform(block)
    mtf = move_to_front(bwt)
    bits = rle_huffman_bits(mtf)
    checksum = 0
    for symbol in mtf[:256]:
        checksum = (checksum * 131 + symbol) % (1 << 32)
    work = bwt_work + len(mtf) + len(mtf) // 2
    return bits, checksum, work


# -- picklable pipeline stages for repro.exec --------------------------------------


def _exec_produce(text: bytes, block_size: int, i: int) -> bytes:
    return text[i * block_size:(i + 1) * block_size]


def _exec_work(i: int, block: bytes) -> Tuple[int, int]:
    bits, checksum, _work = compress_block(block)
    return bits, checksum


def _exec_init() -> dict:
    return {"compressed_bits": 0, "checksum": 0, "blocks": 0}


def _exec_commit(i: int, result: Tuple[int, int], acc: dict) -> None:
    bits, block_checksum = result
    acc["compressed_bits"] += bits
    acc["checksum"] = (acc["checksum"] * 37 + block_checksum) % (1 << 32)
    acc["blocks"] += 1


def burrows_wheeler_transform(block: bytes) -> Tuple[List[int], int]:
    """BWT of ``block`` + sentinel via prefix-doubling suffix sorting.

    Returns (last-column symbols with the sentinel encoded as -1, work
    units ∝ n log n, the real asymptotic cost of the transform).
    """
    n = len(block) + 1  # sentinel at the end, smaller than every byte
    rank = [block[i] + 1 for i in range(len(block))] + [0]
    temp = [0] * n
    order = sorted(range(n), key=rank.__getitem__)
    work = n
    k = 1
    while k < n:
        def sort_key(i: int) -> Tuple[int, int]:
            second = rank[i + k] if i + k < n else -1
            return (rank[i], second)

        order.sort(key=sort_key)
        work += n
        temp[order[0]] = 0
        for j in range(1, n):
            temp[order[j]] = temp[order[j - 1]]
            if sort_key(order[j]) != sort_key(order[j - 1]):
                temp[order[j]] += 1
        rank, temp = temp, rank
        if rank[order[-1]] == n - 1:
            break
        k *= 2

    last_column: List[int] = []
    for suffix in order:
        if suffix == 0:
            last_column.append(-1)  # the sentinel
        else:
            last_column.append(block[suffix - 1])
    return last_column, work


def move_to_front(symbols: List[int]) -> List[int]:
    """MTF over the BWT alphabet (sentinel -1 plus bytes 0..255)."""
    alphabet = [-1] + list(range(256))
    output: List[int] = []
    for symbol in symbols:
        index = alphabet.index(symbol)
        output.append(index)
        if index:
            alphabet.pop(index)
            alphabet.insert(0, symbol)
    return output


def rle_huffman_bits(mtf: List[int]) -> int:
    """Exact output size: RLE of zero runs, Huffman over the histogram."""
    histogram: Dict[int, int] = {}
    zero_run = 0

    def bump(symbol: int) -> None:
        histogram[symbol] = histogram.get(symbol, 0) + 1

    for symbol in mtf:
        if symbol == 0:
            zero_run += 1
            continue
        if zero_run:
            bump(257)  # RUNA/RUNB-style run marker
            zero_run = 0
        bump(symbol)
    if zero_run:
        bump(257)

    return huffman_cost(histogram)


def huffman_cost(histogram: Dict[int, int]) -> int:
    """Total bits of a Huffman code for ``histogram`` (ties deterministic)."""
    if not histogram:
        return 0
    if len(histogram) == 1:
        return sum(histogram.values())  # one symbol: one bit each
    heap: List[Tuple[int, int]] = [
        (count, symbol) for symbol, count in histogram.items()
    ]
    heapify(heap)
    total = 0
    while len(heap) > 1:
        count_a, _ = heappop(heap)
        count_b, symbol = heappop(heap)
        total += count_a + count_b
        heappush(heap, (count_a + count_b, symbol))
    return total
