"""186.crafty analog: iterative-deepening alpha-beta game-tree search.

Section 4.3.1's parallelization, reproduced structurally:

- ``Iterate`` runs searches of increasing depth (the outer loop);
- ``SearchRoot`` searches each root move independently; the recursive
  ``Search`` is "unrolled" one level by specialization, so the unit of
  parallel work is a *(root move, reply move)* subtree — that is what lets
  the speedup scale with threads instead of stalling at ~2x;
- the ``search`` state variable is value-predicted to be identical after
  every iteration (MakeMove/UnMakeMove cancel out) — recorded as a value
  site the profile proves constant;
- the ``next_time_check`` cutoff branch is control-speculated not-taken —
  recorded as a heavily biased branch site;
- the transposition and pawn-structure caches would otherwise be an alias
  nightmare ("the sheer amount of misspeculation limits performance"); each
  cache access goes through a *Commutative* section, so only the tiny atomic
  sections remain.

The game is a deterministic synthetic zero-sum tree: node identities are
64-bit mixes, branching factors and leaf values derive from the node hash.
Alpha-beta pruning inside each subtree gives realistically skewed task costs
("the amount of time it takes to search a particular move is highly
variable").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.profiling.context import current_tracer
from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo

_MASK = 0xFFFFFFFFFFFFFFFF
_INFINITY = 10 ** 9


def _mix(node: int, index: int) -> int:
    value = (node * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9 + 0x94D049BB) & _MASK
    value ^= value >> 29
    return (value * 0x2545F4914F6CDD1D) & _MASK


def _branching(node: int) -> int:
    return 3 + ((node >> 7) % 5)  # 3..7 children


def _leaf_value(node: int) -> int:
    return int((node >> 13) % 2001) - 1000


class _Caches:
    """Transposition + pawn caches; every access is a Commutative section.

    A cache probe is a few dozen cycles inside a node evaluation of a few
    thousand, so the tracer samples one access event in
    ``_SAMPLE`` — enough for the memory profile (and the no-annotation
    ablation) to see the sharing pattern without inflating the atomic
    sections beyond their true share of the work.
    """

    _SAMPLE = 8

    def __init__(self) -> None:
        self.trans_ref: Dict[int, Tuple[int, int]] = {}
        self.pawn_hash_table: Dict[int, int] = {}
        self.hits = 0
        self.probes = 0
        # Caches are semantically transparent: rolling back a speculative
        # store just means tolerating (or dropping) a stale entry.
        from repro.annotations.registry import global_registry

        global_registry().register_group_rollback(
            "crafty.caches", self.trans_ref.clear
        )

    def probe(self, node: int, depth: int):
        self.probes += 1
        tracer = current_tracer()
        if tracer is not None and self.probes % self._SAMPLE == 0:
            with tracer.commutative("crafty.caches"):
                tracer.load("trans_ref", node % 64)
                tracer.work(1)
        entry = self.trans_ref.get(node)
        if entry is not None and entry[0] >= depth:
            self.hits += 1
            return entry[1]
        return None

    def store(self, node: int, depth: int, score: int) -> None:
        tracer = current_tracer()
        if tracer is not None and self.probes % self._SAMPLE == 0:
            with tracer.commutative("crafty.caches"):
                tracer.store("trans_ref", node % 64, value=(depth, score))
                tracer.work(1)
        self.trans_ref[node] = (depth, score)


class CraftyWorkload(Workload):
    """Iterate -> SearchRoot -> Search, unrolled one recursion level."""

    info = WorkloadInfo(
        name="186.crafty",
        loops=(
            "SearchRoot (searchr.c:52-153)",
            "Search (search.c:218-368)",
        ),
        exec_time_pct=("100%", "98%"),
        lines_changed_all=0,
        lines_changed_model=9,
        techniques=("Commutative", "TLS Memory", "DSWP", "Nested"),
    )

    #: Root positions offer more moves than mid-tree nodes (chess: ~30).
    root_branching = 14

    def __init__(self, seed: int = 186, max_depth: int = 6) -> None:
        self.root = _mix(seed, 0)
        self.max_depth = max_depth

    def run(self, tracer: Tracer):
        caches = _Caches()
        best_overall: Tuple[int, int, int] = (-_INFINITY, -1, -1)
        iteration = 0
        nodes_searched = 0

        for depth in range(2, self.max_depth + 1):
            root_moves = [
                _mix(self.root, i) for i in range(self.root_branching)
            ]
            best_at_depth: Tuple[int, int, int] = (-_INFINITY, -1, -1)
            for root_index, root_child in enumerate(root_moves):
                replies = [
                    _mix(root_child, j) for j in range(_branching(root_child))
                ]
                for reply_index, reply in enumerate(replies):
                    with tracer.task("A", iteration):
                        # MakeMove twice (root move + reply).  The search
                        # state is provably identical after UnMakeMove —
                        # the value speculation of Section 4.3.1.
                        tracer.value("search.state", self.root)
                        tracer.work(2)

                    with tracer.task("B", iteration):
                        score, work, visited = self._search(
                            reply, depth - 2, -_INFINITY, _INFINITY, caches
                        )
                        # Two plies of negation back to the root's view.
                        root_view = score if depth % 2 == 0 else -score
                        nodes_searched += visited
                        # The time-check branch: speculated not-taken.
                        tracer.branch("crafty.next_time_check", taken=False)
                        tracer.store("search.result", iteration, value=root_view)
                        tracer.work(work)

                    with tracer.task("C", iteration):
                        tracer.load("search.result", iteration)
                        candidate = (root_view, root_index, reply_index)
                        if candidate > best_at_depth:
                            best_at_depth = candidate
                        tracer.work(2)

                    iteration += 1
            best_overall = best_at_depth

        return {
            "best_score": best_overall[0],
            "best_move": best_overall[1],
            "best_reply": best_overall[2],
            "nodes": nodes_searched,
            "cache_hits": caches.hits,
        }

    def _search(self, node: int, depth: int, alpha: int, beta: int,
                caches: _Caches) -> Tuple[int, int, int]:
        """Negamax with alpha-beta and the transposition cache.

        Returns (score, work units, nodes visited).
        """
        if depth <= 0:
            # Static evaluation is the expensive part of a chess node:
            # material, pawn structure, king safety...
            return _leaf_value(node), 14, 1

        cached = caches.probe(node, depth)
        if cached is not None:
            return cached, 3, 1

        work = 3
        visited = 1
        best = -_INFINITY
        for index in range(_branching(node)):
            child = _mix(node, index)
            score, child_work, child_visited = self._search(
                child, depth - 1, -beta, -alpha, caches
            )
            score = -score
            work += child_work + 1
            visited += child_visited
            if score > best:
                best = score
            if best > alpha:
                alpha = best
            if alpha >= beta:
                break  # the aggressive pruning that skews task times

        caches.store(node, depth, best)
        return best, work, visited
