"""176.gcc analog: a per-function parallel compile of a mini-C unit.

Section 4.2.1: gcc's parse loop hands each finished function to
``rest_of_compilation``, whose optimization sequence dominates runtime
(80-90%) and is superlinear in function size.  Since no interprocedural
optimization runs, functions can compile in parallel — once four
dependences are dealt with, each reproduced here:

- the **global symbol table** (a hash table updated with local symbols just
  before printing): alias speculation drowns in misspeculation, so its
  lookup/insert function is annotated *Commutative*;
- the **obstack allocators**: the ``permanent_obstack`` functions are
  Commutative too; other obstack pointers are value-predicted to return to
  their pre-function value after phase B (a value site the profile proves);
- **bit-flag fields** sharing a byte (``common.public_flag`` vs
  ``common.static_flag``): the analog's IR uses field-split memory objects
  (:class:`repro.ir.values.MemoryObject` with ``field=``), the same fix;
- **label_num**: made *(function, number)* so label numbering is private
  per function; the emitted assembly differs from a sequential compile only
  in label spelling — "semantically, though not syntactically, equivalent".

The compiler is real: :mod:`repro.workloads.gcc_compiler` lexes, parses,
lowers to :mod:`repro.ir`, runs the :mod:`repro.ir.transforms` pass
pipeline, and emits assembly text.
"""

from __future__ import annotations

from typing import Dict, List

from repro.annotations.commutative import commutative
from repro.profiling.context import current_tracer
from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.gcc_compiler import (
    Parser,
    compile_function,
    generate_source,
    tokenize,
)

_symbol_table: Dict[str, int] = {}


def _reset_symbol_table() -> None:
    _symbol_table.clear()


def symtab_remove(name: str) -> None:
    """Rollback partner of :func:`symtab_insert`."""
    _symbol_table.pop(name, None)


@commutative(group="gcc.symtab", rollback=symtab_remove)
def symtab_insert(name: str, value: int) -> None:
    """Insert into the global symbol table (Commutative, Section 4.2.1)."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.load("symtab", hash(name) % 64)
    _symbol_table[name] = value
    if tracer is not None:
        tracer.store("symtab", hash(name) % 64, value=value)
        tracer.work(1)


@commutative(group="gcc.obstack", rollback=lambda: None)
def obstack_alloc(size: int) -> int:
    """permanent_obstack allocation (Commutative)."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.load("obstack", "next_free")
        tracer.store("obstack", "next_free", value=size)
        tracer.work(1)
    return size


class GccWorkload(Workload):
    """yyparse: one iteration per function reaching rest_of_compilation."""

    info = WorkloadInfo(
        name="176.gcc",
        loops=("yyparse (c-parse.c:1396-3380)",),
        exec_time_pct="95%",
        lines_changed_all=18,
        lines_changed_model=8,
        techniques=(
            "Commutative", "Alias & Control Speculation", "TLS Memory", "DSWP",
        ),
    )

    def __init__(self, seed: int = 176, function_count: int = 60) -> None:
        self.source = generate_source(seed, function_count)

    def run(self, tracer: Tracer):
        _reset_symbol_table()
        tokens = tokenize(self.source)
        unit = Parser(tokens).parse_unit()
        assembly: List[str] = []
        total_folds = 0

        for iteration, function_ast in enumerate(unit):
            name = function_ast[1]
            with tracer.task("A", iteration):
                # The parse actions for this function: linear in its tokens.
                token_share = sum(
                    _ast_size(node) for node in function_ast[3]
                )
                symtab_insert(name, iteration)
                tracer.work(4 + 2 * token_share)

            with tracer.task("B", iteration):
                obstack_alloc(16)
                lines, stats, work = compile_function(function_ast, iteration)
                # Other obstack pointers return to their pre-function value
                # after the function is compiled: the value-prediction site.
                tracer.value("obstack.saved_pointers", 0)
                for local in ("x", "y", "z", "t"):
                    symtab_insert(f"{name}.{local}", iteration)
                tracer.store("asm.out", iteration, value=len(lines))
                tracer.work(work)
                total_folds += stats["constant_fold"]

            with tracer.task("C", iteration):
                tracer.load("asm.out", iteration)
                assembly.extend(lines)
                tracer.work(1 + len(lines) // 4)

        return {
            "assembly_lines": len(assembly),
            "functions": len(unit),
            "constant_folds": total_folds,
            "digest": sum(map(len, assembly)) % (1 << 32),
        }


def _ast_size(node) -> int:
    if not isinstance(node, tuple):
        return 1
    return 1 + sum(_ast_size(child) for child in node)
