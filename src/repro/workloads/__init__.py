"""Executable analogs of the SPEC CINT2000 C benchmarks.

The paper evaluates on the eleven C benchmarks of SPEC CINT2000, measured
natively on an Itanium 2.  Neither the suite nor the hardware is available
here, so each benchmark is replaced by a *real, runnable* Python program of
the same algorithm family, decomposed around the same loop the paper names
into the same A/B/C phases, and instrumented with the tracer.  DESIGN.md §4
documents every substitution.

Use :data:`repro.workloads.suite.SUITE` to get all eleven, or import one:

- :mod:`repro.workloads.gzip_w` — LZ77 compressor (Y-branch blocks)
- :mod:`repro.workloads.bzip2_w` — BWT+MTF+RLE/Huffman block compressor
- :mod:`repro.workloads.vpr_w` — annealing FPGA placer (Commutative RNG)
- :mod:`repro.workloads.twolf_w` — annealing standard-cell placer
- :mod:`repro.workloads.mcf_w` — network-simplex min-cost-flow solver
- :mod:`repro.workloads.crafty_w` — alpha-beta game-tree search
- :mod:`repro.workloads.parser_w` — CYK grammar checker (Commutative arena)
- :mod:`repro.workloads.perlbmk_w` — stack-machine interpreter
- :mod:`repro.workloads.gap_w` — algebra interpreter with copying GC
- :mod:`repro.workloads.vortex_w` — B-tree object database
- :mod:`repro.workloads.gcc_w` — mini-C compiler over :mod:`repro.ir`
"""

from repro.workloads.base import OutputComparison, Workload, WorkloadInfo

__all__ = ["OutputComparison", "Workload", "WorkloadInfo"]
