"""Deterministic input generators shared by the workload analogs.

All generators are pure functions of their seed, so every workload run —
on any machine, any Python — sees identical input and produces an identical
trace.  The text generator produces English-like byte streams with enough
repetition that LZ77/BWT compression behaves realistically.
"""

from __future__ import annotations

from typing import List, Tuple


class Xorshift:
    """A tiny, portable PRNG (xorshift64*), independent of ``random``."""

    def __init__(self, seed: int) -> None:
        self.state = (seed or 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        x = self.state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self.state = x & 0xFFFFFFFFFFFFFFFF
        return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF

    def below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def chance(self, probability: float) -> bool:
        return self.next() % 1_000_000 < probability * 1_000_000

    def choice(self, items):
        return items[self.below(len(items))]


_WORD_STEMS = [
    "the", "of", "and", "to", "in", "that", "it", "was", "for", "on",
    "are", "with", "as", "his", "they", "be", "at", "one", "have", "this",
    "from", "or", "had", "by", "word", "but", "what", "some", "we", "can",
    "out", "other", "were", "all", "there", "when", "up", "use", "your",
    "how", "said", "an", "each", "she", "which", "do", "their", "time",
    "if", "will", "way", "about", "many", "then", "them", "write", "would",
    "like", "so", "these", "her", "long", "make", "thing", "see", "him",
    "two", "has", "look", "more", "day", "could", "go", "come", "did",
    "number", "sound", "no", "most", "people", "my", "over", "know",
    "water", "than", "call", "first", "who", "may", "down", "side",
    "been", "now", "find", "any", "new", "work", "part", "take", "get",
    "place", "made", "live", "where", "after", "back", "little", "only",
    "round", "man", "year", "came", "show", "every", "good", "me",
]


def generate_text(seed: int, size: int) -> bytes:
    """English-like byte text of exactly ``size`` bytes (Zipf-ish words)."""
    rng = Xorshift(seed)
    pieces: List[bytes] = []
    produced = 0
    vocabulary = len(_WORD_STEMS)
    while produced < size:
        # Zipf-like: squaring a uniform fraction concentrates mass on the
        # low indices (P(index <= k) = sqrt(k/n)), so common words dominate.
        draw = rng.below(vocabulary * vocabulary)
        index = (draw * draw) // (vocabulary ** 3)
        word = _WORD_STEMS[min(index, vocabulary - 1)].encode()
        if rng.chance(0.08):
            word = word.capitalize()
        pieces.append(word)
        produced += len(word)
        if rng.chance(0.12):
            pieces.append(b".\n" if rng.chance(0.3) else b", ")
            produced += 2
        else:
            pieces.append(b" ")
            produced += 1
    return b"".join(pieces)[:size]


def generate_sentences(seed: int, count: int,
                       min_words: int = 4, max_words: int = 18) -> List[List[str]]:
    """Token lists for the parser workload (terminals of its grammar)."""
    rng = Xorshift(seed)
    determiners = ["the", "a"]
    nouns = ["dog", "cat", "bird", "tree", "house", "river", "cloud", "stone"]
    verbs = ["sees", "likes", "chases", "finds", "watches"]
    adjectives = ["big", "small", "old", "quick", "quiet"]
    prepositions = ["near", "under", "over"]
    sentences: List[List[str]] = []
    for _ in range(count):
        length_budget = min_words + rng.below(max_words - min_words + 1)
        words: List[str] = [rng.choice(determiners), rng.choice(nouns), rng.choice(verbs)]
        while len(words) < length_budget:
            tail = rng.below(3)
            if tail == 0:
                words.extend([rng.choice(determiners), rng.choice(adjectives), rng.choice(nouns)])
            elif tail == 1:
                words.extend([rng.choice(prepositions), rng.choice(determiners), rng.choice(nouns)])
            else:
                words.extend([rng.choice(verbs), rng.choice(determiners), rng.choice(nouns)])
        sentences.append(words[:max_words])
    return sentences


def generate_flow_network(seed: int, nodes: int, arcs_per_node: int) -> Tuple[List[int], List[Tuple[int, int, int, int]]]:
    """A feasible min-cost-flow instance: (supplies, arcs).

    Arcs are (tail, head, capacity, cost).  Supplies sum to zero: the first
    quarter of nodes are sources, the last quarter sinks, balanced exactly.
    A chain of high-capacity arcs guarantees feasibility.
    """
    rng = Xorshift(seed)
    supplies = [0] * nodes
    quarter = max(1, nodes // 4)
    unit = 5
    for i in range(quarter):
        supplies[i] = unit
        supplies[nodes - 1 - i] = -unit
    arcs: List[Tuple[int, int, int, int]] = []
    for tail in range(nodes - 1):  # feasibility chain
        arcs.append((tail, tail + 1, unit * quarter, 50 + rng.below(20)))
    for tail in range(nodes):
        for _ in range(arcs_per_node):
            head = rng.below(nodes)
            if head == tail:
                head = (head + 1) % nodes
            arcs.append((tail, head, 1 + rng.below(10), 1 + rng.below(40)))
    return supplies, arcs


def generate_netlist(seed: int, cells: int, nets: int,
                     max_pins: int = 4) -> List[List[int]]:
    """Nets (cell-index lists) for the placement workloads."""
    rng = Xorshift(seed)
    netlist: List[List[int]] = []
    for _ in range(nets):
        pins = 2 + rng.below(max_pins - 1)
        members = []
        anchor = rng.below(cells)
        members.append(anchor)
        while len(members) < pins:
            # Locality: most connections are to nearby cell indices.
            offset = rng.below(cells // 8 + 1) - cells // 16
            candidate = (anchor + offset) % cells
            if candidate not in members:
                members.append(candidate)
        netlist.append(members)
    return netlist
