"""255.vortex analog: an object-oriented database on a real B-tree.

Section 4.1.2: vortex tests a single-user OO database with batches of
Lookup, Delete and Create transactions.  The parallelization runs the
iterations of BMT_CreateParts / BMT_DeleteParts in parallel using:

- **value speculation** on the ubiquitous ``STATUS`` argument — almost every
  call leaves it NORMAL, so the backedge dependence is speculated away
  (recorded here as a value-profile site that proves >99% predictable);
- **alias speculation** for "the rare case that an update to the database is
  dependent on a previous update's modification of the internal
  representation.  Specifically, the internal structure of the database is a
  B-tree, which is only rarely rebalanced" — and the analog's B-tree is
  real: inserts split nodes, deletes merge them, and a later transaction
  whose search path crosses a freshly rebalanced node carries a true
  dependence ("alias misspeculation on these dependences, though rare, is
  the limiting factor in the speedup obtained");
- the memory manager's ``ExpandChunk`` arena doublings, also rare, also
  speculated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import Xorshift

_ORDER = 8  # max keys per node


class _Node:
    __slots__ = ("id", "keys", "values", "children")
    _next_id = 0

    def __init__(self) -> None:
        self.id = _Node._next_id
        _Node._next_id = self.id + 1
        self.keys: List[int] = []
        self.values: List[int] = []
        self.children: List["_Node"] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """An order-8 B-tree with tracer-visible node accesses."""

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self.root = _Node()
        self.tracer = tracer
        self.size = 0
        self.splits = 0
        self.merges = 0
        self.work = 0

    # -- tracer hooks -------------------------------------------------------------

    def _touch(self, node: _Node) -> None:
        self.work += 2
        if self.tracer is not None:
            self.tracer.load("btree.node", node.id)

    def _dirty(self, node: _Node) -> None:
        self.work += 2
        if self.tracer is not None:
            self.tracer.store("btree.node", node.id, value=tuple(node.keys))

    # -- operations ----------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        node = self.root
        while True:
            self._touch(node)
            index = self._position(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.leaf:
                return None
            node = node.children[index]

    def insert(self, key: int, value: int) -> bool:
        if len(self.root.keys) >= _ORDER:
            old_root = self.root
            self.root = _Node()
            self.root.children.append(old_root)
            self._split_child(self.root, 0)
        inserted = self._insert_nonfull(self.root, key, value)
        if inserted:
            self.size += 1
        return inserted

    def delete(self, key: int) -> bool:
        """Simplified deletion: remove from leaf; merge underfull leaves."""
        path: List[Tuple[_Node, int]] = []
        node = self.root
        while True:
            self._touch(node)
            index = self._position(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                if node.leaf:
                    node.keys.pop(index)
                    node.values.pop(index)
                    self._dirty(node)
                    self.size -= 1
                    self._maybe_merge(path)
                    return True
                # Interior hit: replace with predecessor from the leaf.
                donor = node.children[index]
                while not donor.leaf:
                    self._touch(donor)
                    donor = donor.children[-1]
                self._touch(donor)
                if not donor.keys:
                    return False
                node.keys[index] = donor.keys.pop()
                node.values[index] = donor.values.pop()
                self._dirty(node)
                self._dirty(donor)
                self.size -= 1
                return True
            if node.leaf:
                return False
            path.append((node, index))
            node = node.children[index]

    # -- internals ----------------------------------------------------------------------

    def _position(self, node: _Node, key: int) -> int:
        index = 0
        while index < len(node.keys) and node.keys[index] < key:
            index += 1
            self.work += 1
        return index

    def _insert_nonfull(self, node: _Node, key: int, value: int) -> bool:
        self._touch(node)
        index = self._position(node, key)
        if index < len(node.keys) and node.keys[index] == key:
            return False  # duplicate
        if node.leaf:
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._dirty(node)
            return True
        child = node.children[index]
        if len(child.keys) >= _ORDER:
            self._split_child(node, index)
            if key > node.keys[index]:
                index += 1
            elif key == node.keys[index]:
                return False
        return self._insert_nonfull(node.children[index], key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        """The rare rebalance that creates real cross-transaction deps."""
        self.splits += 1
        child = parent.children[index]
        middle = len(child.keys) // 2
        sibling = _Node()
        sibling.keys = child.keys[middle + 1:]
        sibling.values = child.values[middle + 1:]
        parent.keys.insert(index, child.keys[middle])
        parent.values.insert(index, child.values[middle])
        child.keys = child.keys[:middle]
        child.values = child.values[:middle]
        if child.children:
            sibling.children = child.children[middle + 1:]
            child.children = child.children[:middle + 1]
        parent.children.insert(index + 1, sibling)
        self._dirty(parent)
        self._dirty(child)
        self._dirty(sibling)
        self.work += _ORDER

    def _maybe_merge(self, path: List[Tuple[_Node, int]]) -> None:
        if not path:
            return
        parent, index = path[-1]
        child = parent.children[index]
        if child.leaf and not child.keys and len(parent.children) > 1:
            self.merges += 1
            parent.children.pop(index)
            if index < len(parent.keys):
                # Fold the separator into the right neighbour.
                neighbour = parent.children[index]
                neighbour.keys.insert(0, parent.keys.pop(index))
                neighbour.values.insert(0, parent.values.pop(index))
                self._dirty(neighbour)
            elif parent.keys:
                neighbour = parent.children[-1]
                neighbour.keys.append(parent.keys.pop())
                neighbour.values.append(parent.values.pop())
                self._dirty(neighbour)
            self._dirty(parent)
            self.work += _ORDER


class VortexWorkload(Workload):
    """BMT_Test: batches of Lookup / Delete / Create against the B-tree."""

    info = WorkloadInfo(
        name="255.vortex",
        loops=(
            "BMT_CreateParts (bmt01.c:82-252)",
            "BMT_DeleteParts (bmt10.c:371-393)",
        ),
        exec_time_pct=("20%", "70%"),
        lines_changed_all=0,
        lines_changed_model=0,
        techniques=("Alias & Value Speculation", "TLS Memory", "DSWP"),
    )

    def __init__(self, seed: int = 255, transactions: int = 700,
                 initial_parts: int = 600) -> None:
        self.seed = seed
        self.transactions = transactions
        self.initial_parts = initial_parts

    def run(self, tracer: Tracer):
        _Node._next_id = 0
        rng = Xorshift(self.seed)
        tree = BTree(tracer=None)  # setup phase: untraced, like BMT's preload
        for i in range(self.initial_parts):
            tree.insert(rng.below(1 << 30), i)
        tree.tracer = tracer
        tree.work = 0

        chunk_capacity = self.initial_parts * 2
        allocations = self.initial_parts
        status_normal = 0
        status_failed = 0
        live_keys: List[int] = []
        results = {"lookups": 0, "hits": 0, "creates": 0, "deletes": 0}

        for iteration in range(self.transactions):
            kind = ("lookup", "delete", "create")[iteration % 3]
            with tracer.task("A", iteration):
                # Read the next command from the input schedule.
                part_keys = [rng.below(1 << 30) for _ in range(4)]
                tracer.work(2)

            with tracer.task("B", iteration):
                before = tree.work
                ok = True
                if kind == "lookup":
                    for key in part_keys:
                        results["lookups"] += 1
                        if tree.lookup(key) is not None:
                            results["hits"] += 1
                elif kind == "create":
                    for key in part_keys:
                        allocations += 1
                        if allocations > chunk_capacity:
                            # ExpandChunk: the internal memory manager grows
                            # its arena — a rare, speculated dependence.
                            chunk_capacity *= 2
                            tracer.store("chunk", "capacity", value=chunk_capacity)
                            tree.work += 16
                        tracer.load("chunk", "capacity")
                        if tree.insert(key, iteration):
                            results["creates"] += 1
                            live_keys.append(key)
                        else:
                            ok = False
                else:
                    for key in part_keys:
                        # The input schedule deletes parts it created, so
                        # deletions usually hit — and dirty — real nodes.
                        if live_keys and key % 4:
                            target = live_keys[key % len(live_keys)]
                        else:
                            target = key
                        if tree.delete(target):
                            results["deletes"] += 1
                            if target in live_keys:
                                live_keys.remove(target)
                # STATUS: NORMAL on success — the value-speculated variable.
                tracer.value("STATUS", "NORMAL" if ok else "DUPLICATE")
                if ok:
                    status_normal += 1
                else:
                    status_failed += 1
                tracer.store("txn.result", iteration, value=ok)
                tracer.work(tree.work - before)

            with tracer.task("C", iteration):
                tracer.load("txn.result", iteration)
                tracer.work(1)

        results["status_normal"] = status_normal
        results["status_failed"] = status_failed
        results["splits"] = tree.splits
        results["size"] = tree.size
        return results
