"""The workload protocol: executable SPEC CINT2000 analogs.

Each workload is a real program (a compressor, a chess search, a placer, an
interpreter, ...) whose hot loop has been decomposed into the paper's
A/B/C phase pattern and instrumented with the tracer.  The framework runs
it twice — once under sequential annotation policies (the single-threaded
baseline, bit-exact original semantics) and once under parallel policies
(Y-branches may fire on their intervals) — then simulates the second trace
on 1-32 cores.

Workloads also carry the Table 1 metadata (loop location, execution-time
share, lines changed, techniques) so the benchmark harness can regenerate
that table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Sequence, Tuple

from repro.profiling.tracer import Tracer

Location = Tuple[str, Hashable]


@dataclass(frozen=True)
class WorkloadInfo:
    """Static description — the columns of Table 1.

    ``exec_time_pct`` holds one entry per loop in ``loops`` (the paper's
    "Approx. Exec. Time" column is per loop); a single string is accepted
    and applies to every loop.
    """

    name: str                      # e.g. "164.gzip"
    loops: Tuple[str, ...]         # "deflate (deflate.c:664-762)" style
    exec_time_pct: Tuple[str, ...] # approximate runtime share, per loop
    lines_changed_all: int
    lines_changed_model: int       # within the augmented sequential model only
    techniques: Tuple[str, ...]

    def __post_init__(self):
        if isinstance(self.exec_time_pct, str):
            object.__setattr__(
                self, "exec_time_pct", (self.exec_time_pct,) * len(self.loops)
            )
        if len(self.exec_time_pct) != len(self.loops):
            raise ValueError(
                f"{self.name}: exec_time_pct needs one entry per loop "
                f"({len(self.exec_time_pct)} given for {len(self.loops)} loops)"
            )


@dataclass
class OutputComparison:
    """How the parallel-policy output relates to the sequential output.

    The paper's Section 2.3/4.4 point: some parallelizations legally change
    the output (gzip's compression ratio, gcc's label strings, twolf's random
    choices) while remaining semantically acceptable.  ``equivalent`` means
    byte-identical; ``acceptable`` means within the declared tolerance;
    ``note`` explains (e.g. "compression loss 0.4% < 1%").
    """

    equivalent: bool
    acceptable: bool
    note: str = ""


class Workload(ABC):
    """One benchmark analog.

    Subclasses implement :meth:`run` to execute the real algorithm under the
    tracer, and :meth:`compare_outputs` to judge output acceptability.  All
    randomness must come from seeds fixed in ``__init__`` so runs are
    deterministic.
    """

    info: WorkloadInfo

    @property
    def name(self) -> str:
        return self.info.name

    @abstractmethod
    def run(self, tracer: Tracer) -> Any:
        """Execute the workload under ``tracer``; return the program output."""

    # -- real execution (repro.exec) -------------------------------------------------

    #: True when :meth:`exec_spec` is implemented — the workload's A/B/C
    #: decomposition can run for real on the multiprocess engine, not just
    #: under the tracer/simulator.
    has_exec_spec = False

    def exec_spec(self):
        """A :class:`repro.exec.PipelineSpec` executing this workload for real.

        The spec's sequential reference must produce the *same output dict*
        as :meth:`run` — the engine's outputs are asserted bit-identical to
        it across worker counts.  ``produce`` and ``work`` cross process
        boundaries and must be picklable.
        """
        raise NotImplementedError(
            f"{self.name} does not define a real-execution pipeline spec"
        )

    # -- parallelization hints (the case studies' manual choices) -------------------

    def forced_synchronized(self) -> Sequence[Location]:
        """Locations the case study synchronizes instead of speculating."""
        return ()

    def forced_speculated(self) -> Sequence[Location]:
        """Locations the case study speculates regardless of conflict rate."""
        return ()

    @property
    def synchronize_rate_threshold(self) -> float:
        """Conflict-rate threshold above which a location is synchronized."""
        return 0.6

    @property
    def uses_ybranch(self) -> bool:
        """True when parallel-policy runs produce a different trace/output."""
        return False

    def compare_outputs(self, sequential: Any, parallel: Any) -> OutputComparison:
        """Default: outputs must be identical (most benchmarks)."""
        same = sequential == parallel
        return OutputComparison(equivalent=same, acceptable=same)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
