"""254.gap analog: an algebra interpreter with a copying garbage collector.

Section 4.2.2: gap's Read-Evaluate-Print loop can run input statements in
parallel once (a) the ``Last`` variable (result of the previous statement)
is alias-speculated and (b) the bump allocator is marked *Commutative*.
"For the input sets of 254.gap, this parallelization obtains a speedup of
almost 2x before misspeculation becomes a factor. ... the copy garbage
collection causes a large amount of the misspeculation because it touches
all 'memory', moving around objects to compact the space used."

The analog interprets a small expression language over heap-allocated
integer and list objects.  The heap is a real two-space arena: when an
allocation would overflow, a copying collection walks the environment
roots, copies every live object into to-space and rewrites the slots — the
tracer sees stores on every surviving object, which is exactly the
misspeculation bomb the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.annotations.commutative import commutative
from repro.profiling.context import current_tracer
from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.generators import Xorshift

_allocation_cursor = [0]


def _reset_allocator() -> None:
    _allocation_cursor[0] = 0


def gap_free_all() -> None:
    """Rollback partner: reclaim the bump allocator wholesale."""
    _allocation_cursor[0] = 0


@commutative(group="gap.alloc", rollback=gap_free_all)
def gap_alloc(cells: int) -> int:
    """Bump-allocate ``cells`` from the interpreter's arena (Commutative)."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.load("gap.alloc", "cursor")
    offset = _allocation_cursor[0]
    _allocation_cursor[0] = offset + cells
    if tracer is not None:
        tracer.store("gap.alloc", "cursor", value=_allocation_cursor[0])
        tracer.work(1)
    return offset


class _Heap:
    """Two-space copying heap of boxed values."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.objects: Dict[int, Tuple[str, object]] = {}
        self.next_slot = 0
        self.live_cells = 0
        self.collections = 0

    def allocate(self, kind: str, payload, cells: int, roots: Dict[str, int],
                 tracer: Optional[Tracer]) -> Tuple[int, int]:
        """Allocate; returns (slot, gc work or 0)."""
        gc_work = 0
        if self.live_cells + cells > self.capacity:
            gc_work = self.collect(roots, tracer)
        gap_alloc(cells)
        slot = self.next_slot
        self.next_slot += 1
        self.objects[slot] = (kind, payload)
        self.live_cells += cells
        if tracer is not None:
            tracer.store("gap.heap", slot, value=kind)
        return slot, gc_work

    def collect(self, roots: Dict[str, int], tracer: Optional[Tracer]) -> int:
        """Copying GC: every live object moves — and is visibly written."""
        self.collections += 1
        live = {}
        work = 4
        for name, slot in roots.items():
            if slot in self.objects:
                live[slot] = self.objects[slot]
                work += 2
        # Copy to to-space: new slot ids, slots rewritten in the roots.
        self.objects = {}
        self.live_cells = 0
        remap: Dict[int, int] = {}
        for old_slot, (kind, payload) in live.items():
            new_slot = self.next_slot
            self.next_slot += 1
            remap[old_slot] = new_slot
            self.objects[new_slot] = (kind, payload)
            self.live_cells += _cells_of(kind, payload)
            work += 3
            if tracer is not None:
                # The copy touches all "memory": the misspeculation source.
                tracer.store("gap.heap", new_slot, value=kind)
                tracer.store("gap.heap", old_slot, value="moved")
        for name in list(roots):
            if roots[name] in remap:
                roots[name] = remap[roots[name]]
        return work

    def value(self, slot: int):
        return self.objects[slot][1]


def _cells_of(kind: str, payload) -> int:
    return 1 if kind == "int" else 1 + len(payload)


#: Statement kinds the generator emits.
_ASSIGN, _LIST, _SUM, _USE_LAST = range(4)


def generate_statements(seed: int, count: int, variables: int = 10):
    rng = Xorshift(seed)
    statements = []
    for _ in range(count):
        draw = rng.below(100)
        if draw < 22:
            statements.append((_ASSIGN, rng.below(variables), rng.below(50) + 1,
                               rng.below(variables)))
        elif draw < 45:
            statements.append((_LIST, rng.below(variables), 2 + rng.below(6),
                               rng.below(variables)))
        elif draw < 60:
            statements.append((_SUM, rng.below(variables), 0, rng.below(variables)))
        else:
            statements.append((_USE_LAST, rng.below(variables), rng.below(9) + 1, 0))
    return statements


class GapWorkload(Workload):
    """The Read-Evaluate-Print loop of the gap interpreter."""

    info = WorkloadInfo(
        name="254.gap",
        loops=("main (gap.c:191-227)",),
        exec_time_pct="100%",
        lines_changed_all=3,
        lines_changed_model=3,
        techniques=("Commutative", "TLS Memory", "DSWP", "Alias Speculation"),
    )

    def __init__(self, seed: int = 254, statement_count: int = 420,
                 heap_capacity: int = 100) -> None:
        self.statements = generate_statements(seed, statement_count)
        self.heap_capacity = heap_capacity

    def run(self, tracer: Tracer):
        _reset_allocator()
        heap = _Heap(self.heap_capacity)
        env: Dict[str, int] = {}
        last_value = 0
        printed: List[int] = []

        for iteration, (kind, target, literal, source) in enumerate(self.statements):
            with tracer.task("A", iteration):
                # Read and tokenize one input statement.
                tracer.work(3)

            with tracer.task("B", iteration):
                work = 8
                if kind == _ASSIGN:
                    base = self._load_int(heap, env, f"v{source}", tracer)
                    value = (base + literal) % (1 << 30)
                    slot, gc_work = heap.allocate("int", value, 1, env, tracer)
                    env[f"v{target}"] = slot
                    work += 6 + gc_work
                elif kind == _LIST:
                    items = [
                        (self._load_int(heap, env, f"v{source}", tracer) + i) % 997
                        for i in range(literal)
                    ]
                    slot, gc_work = heap.allocate(
                        "list", items, 1 + literal, env, tracer
                    )
                    env[f"v{target}"] = slot
                    # Last holds the list; its printable value is the sum.
                    value = sum(items) % (1 << 30)
                    work += 4 + 3 * literal + gc_work
                elif kind == _SUM:
                    slot = env.get(f"v{source}")
                    value = 0
                    if slot is not None and slot in heap.objects:
                        tracer.load("gap.heap", slot)
                        payload = heap.value(slot)
                        value = (
                            sum(payload) if isinstance(payload, list) else payload
                        )
                        work += 2 + (
                            len(payload) if isinstance(payload, list) else 1
                        )
                    new_slot, gc_work = heap.allocate("int", value, 1, env, tracer)
                    env[f"v{target}"] = new_slot
                    work += gc_work
                else:  # _USE_LAST: the alias-speculated Last variable
                    tracer.load("gap", "Last")
                    value = (last_value * literal) % (1 << 30)
                    slot, gc_work = heap.allocate("int", value, 1, env, tracer)
                    env[f"v{target}"] = slot
                    work += 4 + gc_work
                last_value = value
                tracer.store("gap", "Last", value=last_value)
                tracer.store("gap.result", iteration, value=last_value)
                tracer.work(work * 6)

            with tracer.task("C", iteration):
                tracer.load("gap.result", iteration)
                printed.append(last_value)
                tracer.work(2)

        return {
            "digest": sum(i * v for i, v in enumerate(printed)) % (1 << 32),
            "collections": heap.collections,
            "statements": len(printed),
        }

    @staticmethod
    def _load_int(heap: _Heap, env: Dict[str, int], name: str,
                  tracer: Tracer) -> int:
        slot = env.get(name)
        if slot is None or slot not in heap.objects:
            return 0
        tracer.load("gap.heap", slot)
        payload = heap.value(slot)
        if isinstance(payload, list):
            return payload[0] if payload else 0
        return payload
