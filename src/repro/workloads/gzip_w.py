"""164.gzip analog: an LZ77 (deflate_fast-style) compressor.

Section 4.4.1: gzip compresses in blocks, but "the choice of when to end
compression of the current block and begin a new block is made based on
various factors related to the compression achieved on the current block",
which "makes it impossible to compress blocks in parallel as it is very hard
to predict the point at which a new block will begin".  Manually parallelized
gzips (pigz) force fixed block boundaries; the Y-branch expresses the same
freedom declaratively (Figure 1).

This analog implements a real LZ77 compressor with a hash-head match finder
and a block-restart heuristic driven by the running match rate.  The restart
decision goes through a Y-branch site:

- **sequential policy** — only the heuristic decides; each boundary is then
  data-dependent on the block's own compression, so the next block's read
  (phase A) carries a dependence on the previous compression (phase B) —
  the serialization that makes stock gzip unparallelizable;
- **interval policy** — the Y-branch fires on the compiler-chosen fixed
  interval; those boundaries are predictable, no dependence, and blocks
  compress in parallel.  Boundaries the *heuristic* forces (rare) stay
  data-dependent and are speculated.

Output is the compressed token stream's bit size plus a checksum; fixed
blocking costs a little compression (smaller dictionaries), which
``compare_outputs`` verifies stays under the paper's observed 1%.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.annotations.ybranch import ybranch
from repro.profiling.tracer import Tracer
from repro.workloads.base import OutputComparison, Workload, WorkloadInfo
from repro.workloads.generators import generate_text

_WINDOW = 1024
_MIN_MATCH = 3
_MAX_MATCH = 64
_LITERAL_BITS = 9
_MATCH_BITS = 24
#: The restart decision is evaluated once per this many input symbols.
_DECIDE_GRANULARITY = 512
#: The staleness heuristic only engages after this much block content —
#: a cold dictionary always looks "stale", so young blocks are exempt.
_HEURISTIC_WARMUP = 6 * 1024


class GzipWorkload(Workload):
    """Deflate-style block compression with a Y-branch block restart."""

    info = WorkloadInfo(
        name="164.gzip",
        loops=(
            "deflate_fast (deflate.c:583-655)",
            "deflate (deflate.c:664-762)",
        ),
        exec_time_pct=("30%", "70%"),
        lines_changed_all=26,
        lines_changed_model=2,
        techniques=("Y-branch", "TLS Memory", "DSWP"),
    )

    def __init__(self, seed: int = 164, size: int = 960 * 1024,
                 block_interval: int = 16384) -> None:
        if block_interval % _DECIDE_GRANULARITY != 0:
            raise ValueError(
                f"block_interval must be a multiple of {_DECIDE_GRANULARITY}"
            )
        self.text = generate_text(seed, size)
        self.block_interval = block_interval
        # The site's probability is per *decision instance*; decisions happen
        # every _DECIDE_GRANULARITY symbols, so the per-symbol rate matches
        # Figure 1's "once per block_interval characters".
        self.ybranch = ybranch(
            "gzip.deflate.new_block", _DECIDE_GRANULARITY / block_interval
        )

    @property
    def uses_ybranch(self) -> bool:
        return True

    has_exec_spec = True

    def exec_spec(self):
        """Run fixed-boundary deflate for real on the engine: A slices the
        input at ``block_interval`` boundaries, B compresses a block with a
        fresh dictionary, C accumulates bits and the rolling checksum.

        This is the interval policy made concrete — exactly the pigz
        transformation Section 4.4.1 describes: forcing predictable block
        starts removes the boundary dependence, so blocks compress in
        parallel with no speculation.  The Y-branch's staleness heuristic is
        *not* consulted (its rare firings are what the simulator-side run
        speculates on); the cost is the same slightly smaller dictionaries
        ``compare_outputs`` bounds at 1%.
        """
        from repro.exec.engine import PipelineSpec

        interval = self.block_interval
        iterations = (len(self.text) + interval - 1) // interval
        return PipelineSpec(
            iterations=iterations,
            produce=partial(_exec_produce, self.text, interval),
            work=_exec_work,
            init=_exec_init,
            commit=_exec_commit,
        )

    def run(self, tracer: Tracer):
        self.ybranch.reset()
        data = self.text
        position = 0
        iteration = 0
        total_bits = 0
        checksum = 0
        blocks: List[int] = []

        while position < len(data):
            with tracer.task("A", iteration):
                # Phase A consumes the previous block's boundary.  When that
                # boundary was heuristic-driven it was stored by the previous
                # phase B: a cross-iteration dependence.
                tracer.load("deflate", "block_boundary")
                start = position
                tracer.work(4)

            with tracer.task("B", iteration):
                end, bits, block_checksum, work, data_dependent = (
                    self._deflate_block(data, start)
                )
                tracer.work(work)
                if data_dependent:
                    # Heuristic boundary: unpredictable, the next read
                    # depends on this compression's outcome.
                    tracer.store("deflate", "block_boundary", value=end)
                tracer.store("deflate.out", iteration, value=bits)

            with tracer.task("C", iteration):
                tracer.load("deflate.out", iteration)
                total_bits += bits
                checksum = (checksum * 31 + block_checksum) % (1 << 32)
                tracer.work(max(1, bits // 4096))

            blocks.append(end - start)
            position = end
            iteration += 1

        return {
            "compressed_bits": total_bits,
            "checksum": checksum,
            "blocks": len(blocks),
            "input_bytes": len(data),
        }

    # -- the actual compressor -------------------------------------------------------

    def _deflate_block(self, data: bytes, start: int,
                       tokens: Optional[List] = None) -> Tuple[int, int, int, int, bool]:
        """Compress one block starting at ``start``.

        Returns (end, output bits, checksum, work units, data_dependent):
        ``data_dependent`` is True when the boundary came from the staleness
        heuristic (condition-true), False for interval firings and end-of-
        input — the predictable cases.  When ``tokens`` is given, the token
        stream (literal ints and (distance, length) pairs) is appended to it
        so tests can decode and verify losslessness.
        """
        heads: Dict[bytes, int] = {}
        position = start
        bits = 0
        checksum = 0
        work = 0
        matched_since_decision = 0
        next_decision = _DECIDE_GRANULARITY

        while position < len(data):
            work += 1
            if position + _MIN_MATCH <= len(data):
                key = data[position:position + _MIN_MATCH]
                candidate = heads.get(key, -1)
                heads[key] = position
            else:
                candidate = -1

            length = 0
            if candidate >= start and position - candidate <= _WINDOW:
                limit = min(_MAX_MATCH, len(data) - position)
                while (
                    length < limit
                    and data[candidate + length] == data[position + length]
                ):
                    length += 1
                work += length // 4 + 1

            if length >= _MIN_MATCH:
                bits += _MATCH_BITS
                checksum = (checksum * 131 + length) % (1 << 32)
                if tokens is not None:
                    tokens.append((position - candidate, length))
                position += length
                matched_since_decision += 1
            else:
                bits += _LITERAL_BITS
                checksum = (checksum * 131 + data[position]) % (1 << 32)
                if tokens is not None:
                    tokens.append(data[position])
                position += 1

            consumed = position - start
            if consumed >= next_decision:
                stale = (
                    consumed >= _HEURISTIC_WARMUP
                    and matched_since_decision < _DECIDE_GRANULARITY // 40
                )
                matched_since_decision = 0
                next_decision += _DECIDE_GRANULARITY
                if self.ybranch.decide(stale):
                    return position, bits, checksum, work, stale

        return len(data), bits, checksum, work, False

    def compare_outputs(self, sequential, parallel) -> OutputComparison:
        return compare_gzip_outputs(sequential, parallel)


# -- picklable pipeline stages for repro.exec --------------------------------------


def deflate_fixed_block(block: bytes) -> Tuple[int, int]:
    """(output bits, checksum) for one fixed-boundary block.

    Same match finder and token costs as :meth:`GzipWorkload._deflate_block`
    but with the dictionary scoped to the block and no restart decisions —
    the whole point of fixed boundaries is that nothing mid-block can move
    the boundary, so phase B is a pure function of its slice.
    """
    heads: Dict[bytes, int] = {}
    position = 0
    bits = 0
    checksum = 0
    while position < len(block):
        if position + _MIN_MATCH <= len(block):
            key = block[position:position + _MIN_MATCH]
            candidate = heads.get(key, -1)
            heads[key] = position
        else:
            candidate = -1

        length = 0
        if candidate >= 0 and position - candidate <= _WINDOW:
            limit = min(_MAX_MATCH, len(block) - position)
            while (
                length < limit
                and block[candidate + length] == block[position + length]
            ):
                length += 1

        if length >= _MIN_MATCH:
            bits += _MATCH_BITS
            checksum = (checksum * 131 + length) % (1 << 32)
            position += length
        else:
            bits += _LITERAL_BITS
            checksum = (checksum * 131 + block[position]) % (1 << 32)
            position += 1
    return bits, checksum


def _exec_produce(text: bytes, interval: int, i: int) -> bytes:
    return text[i * interval:(i + 1) * interval]


def _exec_work(i: int, block: bytes) -> Tuple[int, int]:
    return deflate_fixed_block(block)


def _exec_init() -> dict:
    return {"compressed_bits": 0, "checksum": 0, "blocks": 0}


def _exec_commit(i: int, result: Tuple[int, int], acc: dict) -> None:
    bits, block_checksum = result
    acc["compressed_bits"] += bits
    acc["checksum"] = (acc["checksum"] * 31 + block_checksum) % (1 << 32)
    acc["blocks"] += 1


def compare_gzip_outputs(sequential, parallel) -> OutputComparison:
    if sequential == parallel:
        return OutputComparison(True, True, "bit-identical")
    seq_bits = sequential["compressed_bits"]
    par_bits = parallel["compressed_bits"]
    loss = (par_bits - seq_bits) / seq_bits
    note = f"compression loss {loss:.2%} (paper observed < 1%)"
    return OutputComparison(
        equivalent=False,
        acceptable=loss < 0.01,
        note=note,
    )
