"""The paper's Figure 2: ``Yacm_random`` from 300.twolf, made Commutative.

The ACM "minimal standard" Lehmer generator maintains an internal recurrence
on its *seed* — exactly the dependence that serializes every loop containing
a call to it.  Marking the generator *Commutative* tells the framework the
calls may execute in any order (Section 2.3.2 / 4.3.3): "it seems
counterintuitive for parallelism to be limited by the generation of random
numbers."

:class:`AcmRandom` reports its seed accesses to the ambient tracer so the
memory profile sees the recurrence; when ``commutative=True`` the accesses
are group-tagged and the dependence disappears from the parallelizer's view
while the tiny atomic section remains.
"""

from __future__ import annotations

from typing import Optional

from repro.profiling.context import current_tracer

_MODULUS = 2147483647  # 2^31 - 1
_MULTIPLIER = 16807    # 7^5, Lewis-Goodman-Miller


class AcmRandom:
    """Lehmer LCG with tracer-visible internal state.

    Attributes:
        group: the Commutative group name its accesses are tagged with, or
            ``None`` to run un-annotated (the ablation case — every call then
            serializes on the seed recurrence).
    """

    def __init__(self, seed: int = 1, commutative: bool = True,
                 group: str = "Yacm_random") -> None:
        if not 0 < seed < _MODULUS:
            seed = (seed % (_MODULUS - 1)) + 1
        self.seed = seed
        self.group: Optional[str] = group if commutative else None
        self.calls = 0
        if self.group is not None:
            # Section 2.3.2: speculative use of a Commutative function needs
            # a rollback; for the generator that is restoring the seed.
            from repro.annotations.registry import global_registry

            global_registry().register_group_rollback(self.group, self.restore)

    def next(self) -> int:
        """One Lehmer step; returns the new seed value in [1, 2^31-2]."""
        tracer = current_tracer()
        if tracer is not None and self.group is not None:
            with tracer.commutative(self.group):
                return self._step(tracer)
        return self._step(tracer)

    def _step(self, tracer) -> int:
        if tracer is not None:
            tracer.load("Yacm_random", "seed")
        self.seed = (_MULTIPLIER * self.seed) % _MODULUS
        self.calls += 1
        if tracer is not None:
            tracer.store("Yacm_random", "seed", value=self.seed)
            tracer.work(1)
        return self.seed

    def below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def unit(self) -> float:
        """Uniform float in (0, 1)."""
        return self.next() / _MODULUS

    def snapshot(self) -> int:
        return self.seed

    def restore(self, seed: int) -> None:
        """Rollback support for speculative execution (Section 2.3.2)."""
        self.seed = seed
