"""Program-wide registry of annotation sites.

The framework consults this to know which Commutative groups exist, to
validate rollback pairing before enabling speculation, and to flip Y-branch
policies when it decides parallelization is profitable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.annotations.commutative import CommutativeFunction
    from repro.annotations.ybranch import YBranchSite


class AnnotationRegistry:
    """Holds every Commutative function and Y-branch site declared."""

    def __init__(self) -> None:
        self._commutative: Dict[str, List["CommutativeFunction"]] = defaultdict(list)
        self._group_rollbacks: Dict[str, object] = {}
        self._ybranches: Dict[str, "YBranchSite"] = {}

    # -- commutative ------------------------------------------------------------

    def register_commutative(self, wrapper: "CommutativeFunction") -> None:
        self._commutative[wrapper.group].append(wrapper)

    def register_group_rollback(self, group: str, rollback) -> None:
        """Declare a rollback for a group used via ``tracer.commutative``
        directly (objects like :class:`repro.workloads.rng.AcmRandom` that
        are not plain decorated functions)."""
        self._group_rollbacks[group] = rollback

    def commutative_groups(self) -> List[str]:
        return sorted(set(self._commutative) | set(self._group_rollbacks))

    def group_members(self, group: str) -> List["CommutativeFunction"]:
        return list(self._commutative.get(group, []))

    def validate_rollbacks(self, groups: Optional[List[str]] = None) -> List[str]:
        """Groups usable under speculation need at least one rollback.

        Returns the list of offending groups (empty means all valid).
        Section 2.3.2: "a rollback function existed to undo the effects of
        calls to the Commutative function" is required in a speculative
        execution environment.
        """
        to_check = groups if groups is not None else self.commutative_groups()
        missing: List[str] = []
        for group in to_check:
            if group in self._group_rollbacks:
                continue
            members = self._commutative.get(group, [])
            if members and not any(m.rollback is not None for m in members):
                missing.append(group)
        return missing

    # -- y-branches ---------------------------------------------------------------

    def register_ybranch(self, site: "YBranchSite") -> None:
        self._ybranches[site.name] = site

    def ybranch_sites(self) -> List["YBranchSite"]:
        return [self._ybranches[name] for name in sorted(self._ybranches)]

    def ybranch(self, name: str) -> "YBranchSite":
        return self._ybranches[name]

    def engage_parallel_policies(self) -> None:
        """Flip every Y-branch to the interval policy (parallel mode)."""
        for site in self._ybranches.values():
            site.use_interval_policy()

    def restore_sequential_policies(self) -> None:
        for site in self._ybranches.values():
            site.use_sequential_policy()

    def reset(self) -> None:
        """Forget everything — used between workload runs in tests."""
        self._commutative.clear()
        self._group_rollbacks.clear()
        self._ybranches.clear()


_registry = AnnotationRegistry()


def global_registry() -> AnnotationRegistry:
    return _registry
