"""The paper's two sequential-programming-model extensions (Section 2.3).

- :mod:`repro.annotations.ybranch` — the *Y-branch*: a branch whose true
  path may legally be taken on any dynamic instance, with a probability hint
  telling the compiler how often taking it is worthwhile;
- :mod:`repro.annotations.commutative` — the *Commutative* function
  annotation: calls may execute in any order; internal state dependences are
  invisible outside; groups share state; a rollback function supports
  speculative execution;
- :mod:`repro.annotations.registry` — the program-wide registry that
  validates groups and rollback pairing.

Both work on live Python code (the workload analogs) *and* have IR-level
counterparts (:class:`repro.ir.instructions.YBranch`,
:attr:`repro.ir.function.Function.commutative_group`).
"""

from repro.annotations.commutative import CommutativeFunction, commutative
from repro.annotations.registry import AnnotationRegistry, global_registry
from repro.annotations.ybranch import YBranchPolicy, YBranchSite, ybranch

__all__ = [
    "AnnotationRegistry",
    "CommutativeFunction",
    "YBranchPolicy",
    "YBranchSite",
    "commutative",
    "global_registry",
    "ybranch",
]
