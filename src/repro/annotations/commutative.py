"""The *Commutative* annotation (Section 2.3.2).

    "The semantics of the Commutative annotation is that, outside of the
    function, the outputs of the function call are only dependent upon its
    inputs. ... The Commutative function itself executes atomically when
    called and, inside the function, dependences that are local to the
    function are respected."

Applied to a live Python function, the decorator:

- tags the function with its group (functions sharing internal state — the
  paper's malloc/free example — share a group name);
- wraps every call in the ambient tracer's commutative context, so the
  memory profile drops internal-state dependences between group members
  while still recording the *atomic sections* the runtime must respect;
- records the rollback function needed for speculative execution (the paper
  maintains "a well-defined sequential sequence of calls" by running
  Commutative functions in non-transactional memory with a rollback — e.g.
  ``free`` undoes ``malloc``).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, TypeVar

from repro.profiling.context import current_tracer

F = TypeVar("F", bound=Callable)


class CommutativeFunction:
    """Wrapper installed by :func:`commutative`.

    Calls pass straight through to the wrapped function; when a tracer is
    active, the call body runs inside ``tracer.commutative(group)`` so all
    shared-state accesses it makes are tagged with the group.
    """

    def __init__(
        self,
        function: Callable,
        group: str,
        rollback: Optional[Callable] = None,
    ) -> None:
        functools.update_wrapper(self, function)
        self.function = function
        self.group = group
        self.rollback = rollback
        self.call_count = 0

    def __call__(self, *args, **kwargs):
        self.call_count += 1
        tracer = current_tracer()
        if tracer is None:
            return self.function(*args, **kwargs)
        with tracer.commutative(self.group):
            return self.function(*args, **kwargs)

    def set_rollback(self, rollback: Callable) -> Callable:
        """Attach (or replace) the rollback; usable as a decorator."""
        self.rollback = rollback
        return rollback

    def __get__(self, instance, owner=None):
        # Support decorating methods: bind like a normal function would.
        if instance is None:
            return self
        return functools.partial(self.__call__, instance)

    def __repr__(self) -> str:
        return f"CommutativeFunction({self.function.__name__!r}, group={self.group!r})"


def commutative(
    group: Optional[str] = None,
    rollback: Optional[Callable] = None,
) -> Callable[[F], CommutativeFunction]:
    """Mark a function *Commutative*.

    ``group`` defaults to the function's own name; pass an explicit group to
    declare shared internal state across several functions::

        @commutative(group="allocator")
        def xalloc(size): ...

        @commutative(group="allocator", rollback=xfree)
        def xrealloc(block, size): ...

    The paper's Figure 2 random-number generator is the canonical
    single-function case: ``@commutative()`` on ``yacm_random`` removes the
    seed recurrence from the parallelizer's view.
    """

    def wrap(function: F) -> CommutativeFunction:
        from repro.annotations.registry import global_registry

        wrapper = CommutativeFunction(
            function,
            group=group or function.__name__,
            rollback=rollback,
        )
        global_registry().register_commutative(wrapper)
        return wrapper

    return wrap
