"""The Y-branch (Section 2.3.1).

    "The semantics of the Y-branch is that for all dynamic instances, the
    *true* path can be taken regardless of the condition of the branch.
    The compiler is then free to generate code that pursues this path when
    it is profitable to do so."

For live Python workloads a :class:`YBranchSite` replaces the ``if``: the
workload computes its natural condition and asks the site to decide.  Under
the default :attr:`YBranchPolicy.SEQUENTIAL` policy the decision *is* the
condition — single-threaded semantics, bit-identical output.  When the
parallelizer engages the :attr:`YBranchPolicy.INTERVAL` policy, the site
fires the true path at the fixed interval implied by the probability hint
(``round(1/p)`` dynamic instances), regardless of the condition — exactly
the transformation Figure 1 describes for dictionary compression, where the
compiler picks the block size instead of the heuristic.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.profiling.context import current_tracer


class YBranchPolicy(Enum):
    """How a Y-branch site resolves its dynamic instances."""

    SEQUENTIAL = "sequential"  # honor the condition: original program output
    INTERVAL = "interval"      # fire true path every round(1/probability) calls


class YBranchSite:
    """One static Y-branch.

    Attributes:
        name: stable site name, used by the branch profile.
        probability: the hint from the source annotation
            (``@YBRANCH(probability=.00001)`` in Figure 1a).
        policy: how :meth:`decide` answers; the framework flips this to
            INTERVAL when it parallelizes the enclosing loop.
    """

    def __init__(self, name: str, probability: float) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"Y-branch probability must be in (0, 1], got {probability}"
            )
        self.name = name
        self.probability = probability
        self.policy = YBranchPolicy.SEQUENTIAL
        self._calls = 0

    @property
    def interval(self) -> int:
        """Dynamic instances between forced firings under INTERVAL policy."""
        return max(1, round(1.0 / self.probability))

    def decide(self, condition: bool) -> bool:
        """Resolve one dynamic instance of the branch.

        Returns the path to take.  The *true* return is always legal
        regardless of ``condition``; the *false* return is only produced
        when the condition itself is false (taking the false path against
        a true condition would not be a Y-branch — only the true path has
        the always-legal property).
        """
        self._calls += 1
        if self.policy is YBranchPolicy.SEQUENTIAL:
            taken = bool(condition)
        else:
            # Fire on the interval OR when the original condition demands it:
            # honoring a true condition is always allowed and keeps outputs
            # closer to the sequential run.
            taken = bool(condition) or (self._calls % self.interval == 0)
        tracer = current_tracer()
        if tracer is not None:
            tracer.branch(self.name, taken, is_ybranch=True)
        return taken

    def reset(self) -> None:
        self._calls = 0

    def use_interval_policy(self) -> None:
        self.policy = YBranchPolicy.INTERVAL

    def use_sequential_policy(self) -> None:
        self.policy = YBranchPolicy.SEQUENTIAL

    def __repr__(self) -> str:
        return (
            f"YBranchSite({self.name!r}, p={self.probability}, "
            f"policy={self.policy.value})"
        )


def ybranch(name: str, probability: float) -> YBranchSite:
    """Declare a Y-branch site — the ``@YBRANCH(probability=...)`` of Figure 1.

    Registered with the global annotation registry so the framework can
    discover and re-police it.
    """
    from repro.annotations.registry import global_registry

    site = YBranchSite(name, probability)
    global_registry().register_ybranch(site)
    return site
