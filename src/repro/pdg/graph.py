"""PDG data structure: typed, loop-carried-aware dependence edges."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import Instruction


@dataclass(frozen=True)
class PDGEdge:
    """A dependence between two PDG nodes.

    Attributes:
        source, target: instruction ids.
        kind: ``"register"``, ``"memory"`` or ``"control"``.
        detail: register name / raw-war-waw / branch direction.
        loop_carried: True when the dependence crosses the loop back edge.
        breakable: True when some speculation or annotation may remove the
            edge (set by the speculation manager / Y-branch handling).
        removed_by: name of the technique that removed the edge, if any
            (edges are never physically deleted — the simulator needs them
            to model misspeculation).
    """

    source: int
    target: int
    kind: str
    detail: str = ""
    loop_carried: bool = False

    def describe(self) -> str:
        carried = "carried" if self.loop_carried else "intra"
        return f"{self.source}->{self.target} [{self.kind}:{self.detail} {carried}]"


@dataclass
class PDGNode:
    instruction: Instruction

    @property
    def id(self) -> int:
        return self.instruction.id

    @property
    def cost(self) -> int:
        return self.instruction.cost

    def __repr__(self) -> str:
        return f"PDGNode({self.instruction!r})"


class PDG:
    """A mutable program dependence graph over one loop region.

    Speculation does not delete edges; it marks them *speculated* so the
    partitioner ignores them while the misspeculation model still sees them.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, PDGNode] = {}
        self._edges: List[PDGEdge] = []
        self._speculated: Dict[PDGEdge, str] = {}
        self._successors: Dict[int, Set[int]] = defaultdict(set)
        self._predecessors: Dict[int, Set[int]] = defaultdict(set)

    # -- construction ---------------------------------------------------------------

    def add_node(self, instruction: Instruction) -> PDGNode:
        node = self._nodes.get(instruction.id)
        if node is None:
            node = PDGNode(instruction)
            self._nodes[instruction.id] = node
        return node

    def add_edge(self, edge: PDGEdge) -> None:
        if edge.source not in self._nodes or edge.target not in self._nodes:
            raise KeyError(f"edge {edge.describe()} references unknown node")
        self._edges.append(edge)
        self._successors[edge.source].add(edge.target)
        self._predecessors[edge.target].add(edge.source)

    # -- speculation marking -----------------------------------------------------------

    def speculate_edge(self, edge: PDGEdge, technique: str) -> None:
        """Mark ``edge`` as broken by ``technique`` (alias/value/control/...)."""
        if edge not in self._edges:
            raise KeyError(f"unknown edge {edge.describe()}")
        self._speculated[edge] = technique

    def is_speculated(self, edge: PDGEdge) -> bool:
        return edge in self._speculated

    def speculation_technique(self, edge: PDGEdge) -> Optional[str]:
        return self._speculated.get(edge)

    def speculated_edges(self) -> List[Tuple[PDGEdge, str]]:
        return list(self._speculated.items())

    # -- queries ---------------------------------------------------------------------------

    @property
    def nodes(self) -> List[PDGNode]:
        return list(self._nodes.values())

    @property
    def edges(self) -> List[PDGEdge]:
        return list(self._edges)

    def node(self, instruction_id: int) -> PDGNode:
        return self._nodes[instruction_id]

    def has_node(self, instruction_id: int) -> bool:
        return instruction_id in self._nodes

    def effective_edges(self) -> List[PDGEdge]:
        """Edges the partitioner must respect: all non-speculated edges."""
        return [e for e in self._edges if e not in self._speculated]

    def effective_successors(self, node_id: int) -> Set[int]:
        return {
            e.target for e in self._edges
            if e.source == node_id and e not in self._speculated
        }

    def edges_between(self, source: int, target: int) -> List[PDGEdge]:
        return [e for e in self._edges if e.source == source and e.target == target]

    def loop_carried_edges(self, include_speculated: bool = False) -> List[PDGEdge]:
        edges = self._edges if include_speculated else self.effective_edges()
        return [e for e in edges if e.loop_carried]

    def incident_edges(self, node_id: int) -> List[PDGEdge]:
        return [e for e in self._edges if e.source == node_id or e.target == node_id]

    def total_cost(self) -> int:
        return sum(node.cost for node in self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"PDG({len(self._nodes)} nodes, {len(self._edges)} edges, "
            f"{len(self._speculated)} speculated)"
        )
