"""The Program Dependence Graph and its SCC condensation.

DSWP operates on the PDG of a loop body: nodes are instructions, edges are
register, memory, and control dependences, each flagged loop-carried or not.
The strongly connected components of the PDG are the atomic units of
pipelining — an SCC must live within one stage, and the condensation DAG's
topological order is the pipeline order (Ottoni et al. [20]).
"""

from repro.pdg.builder import build_loop_pdg
from repro.pdg.graph import PDG, PDGEdge, PDGNode
from repro.pdg.scc import SCC, SCCDag, condense

__all__ = [
    "PDG",
    "PDGEdge",
    "PDGNode",
    "SCC",
    "SCCDag",
    "build_loop_pdg",
    "condense",
]
