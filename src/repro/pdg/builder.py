"""Build the PDG of a loop from the static analyses."""

from __future__ import annotations

from typing import Optional

from repro.analysis.alias import AliasAnalysis
from repro.analysis.controldep import ControlDependence
from repro.analysis.loopcarried import DependenceKind, classify_loop_dependences
from repro.ir.instructions import YBranch
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.pdg.graph import PDG, PDGEdge


def build_loop_pdg(
    program: Program,
    loop: Loop,
    alias: Optional[AliasAnalysis] = None,
) -> PDG:
    """Construct the PDG for ``loop``.

    Nodes are the loop body's instructions.  Edges come from three analyses:

    - register dependences (SSA def→use, Phi-carried across the back edge);
    - memory dependences (may-alias conflicts, carried and intra);
    - control dependences (post-dominance frontiers); the terminator of each
      controlling block gains an edge to every instruction of the dependent
      block.  Control edges from loop latch branches to the header's
      instructions are loop-carried (they decide the *next* iteration).

    Y-branch control edges are *not* added at all: by Section 2.3.1 the true
    path is always legal, so nothing is semantically control dependent on the
    Y-branch's computed condition.  (The recommended firing rate travels via
    the branch profile instead.)
    """
    pdg = PDG()
    body_ids = set()
    for instruction in loop.instructions():
        pdg.add_node(instruction)
        body_ids.add(instruction.id)

    for dependence in classify_loop_dependences(program, loop, alias=alias):
        if dependence.source.id not in body_ids or dependence.target.id not in body_ids:
            continue
        pdg.add_edge(
            PDGEdge(
                source=dependence.source.id,
                target=dependence.target.id,
                kind=dependence.kind.value,
                detail=dependence.detail,
                loop_carried=dependence.loop_carried,
            )
        )

    control = ControlDependence(loop.function)
    latch_names = {latch.name for latch in loop.latches}
    for branch_block_name in (b.name for b in loop.body_blocks()):
        branch_block = loop.function.block(branch_block_name)
        terminator = branch_block.terminator
        if terminator is None or terminator.id not in body_ids:
            continue
        if isinstance(terminator, YBranch):
            continue  # Y-branch: always-legal true path, no control dependence
        for dependent_name in control.dependents_of(branch_block_name):
            if not loop.contains_block(dependent_name):
                continue
            carried = (
                branch_block_name in latch_names
                and dependent_name == loop.header.name
            ) or dependent_name == loop.header.name
            for instruction in loop.function.block(dependent_name).instructions:
                if instruction.id not in body_ids or instruction.id == terminator.id:
                    continue
                pdg.add_edge(
                    PDGEdge(
                        source=terminator.id,
                        target=instruction.id,
                        kind="control",
                        detail=branch_block_name,
                        loop_carried=carried,
                    )
                )
    return pdg
