"""SCC condensation of the PDG (the "DAG-SCC" of the DSWP literature).

Pipelining assigns whole SCCs to stages: instructions in a dependence cycle
cannot be split across stages without a backward inter-stage dependence.
The condensation is a DAG; its topological order is the legal stage order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.pdg.graph import PDG, PDGEdge


@dataclass(frozen=True)
class SCC:
    """One strongly connected component of the (effective) PDG.

    ``doall`` is the property PS-DSWP replication needs: an SCC is *doall*
    when it participates in no effective loop-carried dependence, internal
    or incident — its dynamic instances from different iterations can run
    concurrently (Section 2.1: "replicate stages that contain no loop-carried
    dependences").
    """

    index: int
    node_ids: FrozenSet[int]
    cost: int
    doall: bool

    def __len__(self) -> int:
        return len(self.node_ids)


class SCCDag:
    """The condensation DAG with per-SCC cost annotations."""

    def __init__(self, pdg: PDG, sccs: List[SCC], edges: Set[Tuple[int, int]]) -> None:
        self.pdg = pdg
        self.sccs = sccs
        self.edges = edges  # (scc index, scc index), forward in topo order
        self._by_node: Dict[int, int] = {}
        for scc in sccs:
            for node_id in scc.node_ids:
                self._by_node[node_id] = scc.index

    def scc_of(self, node_id: int) -> SCC:
        return self.sccs[self._by_node[node_id]]

    def successors(self, scc_index: int) -> Set[int]:
        return {b for a, b in self.edges if a == scc_index}

    def predecessors(self, scc_index: int) -> Set[int]:
        return {a for a, b in self.edges if b == scc_index}

    def topological_order(self) -> List[SCC]:
        """Kahn topological sort; ties broken by SCC index for determinism."""
        in_degree = {scc.index: 0 for scc in self.sccs}
        for _, target in self.edges:
            in_degree[target] += 1
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[SCC] = []
        while ready:
            index = ready.pop(0)
            order.append(self.sccs[index])
            for successor in sorted(self.successors(index)):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self.sccs):
            raise RuntimeError("SCC condensation contains a cycle — Tarjan bug")
        return order

    def total_cost(self) -> int:
        return sum(scc.cost for scc in self.sccs)

    def doall_cost(self) -> int:
        return sum(scc.cost for scc in self.sccs if scc.doall)

    def __repr__(self) -> str:
        return f"SCCDag({len(self.sccs)} SCCs, {len(self.edges)} edges)"


def condense(pdg: PDG) -> SCCDag:
    """Tarjan SCCs over the *effective* (non-speculated) edges of ``pdg``."""
    successors: Dict[int, List[int]] = {node.id: [] for node in pdg.nodes}
    for edge in pdg.effective_edges():
        successors[edge.source].append(edge.target)

    index_counter = [0]
    stack: List[int] = []
    on_stack: Set[int] = set()
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    components: List[Set[int]] = []

    for root in sorted(successors):
        if root in index:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_offset = work[-1]
            if child_offset == 0:
                index[node] = index_counter[0]
                lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            pushed = False
            children = sorted(successors[node])
            for offset in range(child_offset, len(children)):
                child = children[offset]
                if child not in index:
                    work[-1] = (node, offset + 1)
                    work.append((child, 0))
                    pushed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if pushed:
                continue
            if lowlink[node] == index[node]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    # Tarjan emits SCCs in reverse topological order; flip for forward order.
    components.reverse()

    sccs: List[SCC] = []
    by_node: Dict[int, int] = {}
    for i, component in enumerate(components):
        cost = sum(pdg.node(node_id).cost for node_id in component)
        # PS-DSWP criterion: an SCC is replicable iff it contains no
        # *internal* loop-carried dependence.  Carried edges to or from other
        # SCCs flow through inter-stage queues and do not block replication.
        internal_carried = any(
            edge.loop_carried
            and edge.source in component
            and edge.target in component
            for edge in pdg.effective_edges()
        )
        sccs.append(SCC(i, frozenset(component), cost, not internal_carried))
        for node_id in component:
            by_node[node_id] = i

    edges: Set[Tuple[int, int]] = set()
    for edge in pdg.effective_edges():
        a, b = by_node[edge.source], by_node[edge.target]
        if a != b:
            edges.add((a, b))
    return SCCDag(pdg, sccs, edges)
