"""Classic DSWP stage balancing (the non-replicated baseline).

Without parallel-stage replication, DSWP throughput is limited by the
heaviest stage.  Given the SCC-DAG's topological order, the best contiguous
assignment of SCCs to *k* stages that minimizes the maximum stage cost is
the classic linear-partition problem, solved here by binary search over the
bottleneck plus a greedy feasibility check.

This module exists to quantify what replication buys: Section 2.1 observes
that original-form DSWP "is not very effective" precisely because stage
imbalance caps speedup at ``total / max_stage``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.pdg.scc import SCC


def balance_stages(topo: Sequence[SCC], stage_count: int) -> List[List[SCC]]:
    """Split ``topo`` (SCCs in topological order) into ``stage_count``
    contiguous stages minimizing the maximum stage cost.

    Returns the list of stages; stages may be empty when there are fewer
    SCCs than stages.
    """
    if stage_count < 1:
        raise ValueError("need at least one stage")
    costs = [scc.cost for scc in topo]
    if not costs:
        return [[] for _ in range(stage_count)]

    low = max(costs)
    high = sum(costs)
    while low < high:
        mid = (low + high) // 2
        if _feasible(costs, stage_count, mid):
            high = mid
        else:
            low = mid + 1
    bottleneck = low

    stages: List[List[SCC]] = []
    current: List[SCC] = []
    current_cost = 0
    remaining_stages = stage_count
    for index, scc in enumerate(topo):
        remaining_items = len(topo) - index
        # Keep enough stages for the remaining items only when each stage
        # must be non-empty; emptiness is allowed, so just respect the bound.
        if current and current_cost + scc.cost > bottleneck and remaining_stages > 1:
            stages.append(current)
            remaining_stages -= 1
            current = []
            current_cost = 0
        current.append(scc)
        current_cost += scc.cost
    stages.append(current)
    while len(stages) < stage_count:
        stages.append([])
    return stages


def pipeline_throughput_bound(stages: List[List[SCC]]) -> Tuple[int, int]:
    """(total cost, bottleneck stage cost) — speedup bound is their ratio."""
    totals = [sum(scc.cost for scc in stage) for stage in stages]
    return sum(totals), max(totals) if totals else 0


def _feasible(costs: List[int], stages: int, bound: int) -> bool:
    used = 1
    current = 0
    for cost in costs:
        if cost > bound:
            return False
        if current + cost > bound:
            used += 1
            current = 0
            if used > stages:
                return False
        current += cost
    return True
