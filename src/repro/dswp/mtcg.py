"""Multithreaded code generation: lowering a partition to a task graph.

Real MTCG emits per-stage thread bodies with queue produces/consumes; our
execution substrate is the performance simulator, so "code generation" means
synthesizing the dynamic task graph the partition implies:

- every iteration contributes one task per stage, with the stage's static
  cost (the IR's per-instruction ``cost`` attributes aggregated per SCC);
- speculation decisions carry an ``expected_rate``; the synthesizer turns a
  rate *r* into a deterministic misspeculation pattern — one serialization
  edge between consecutive parallel-stage tasks every ``round(1/r)``
  iterations — which is how the paper's profile-driven "dependences that
  actually occurred" enter the model when only static information exists.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.dswp.partition import Partition, StageKind


def synthesize_task_graph(partition: Partition, iterations: int) -> TaskGraph:
    """Expand ``partition`` into ``iterations`` dynamic iterations."""
    if iterations < 1:
        raise ValueError("need at least one iteration")

    phase_costs = {stage.phase: stage.cost for stage in partition.stages}
    phases_present = [stage.phase for stage in partition.stages]

    tasks: List[Task] = []
    index = 0
    task_index_of = {}
    for iteration in range(iterations):
        for phase_name in ("A", "B", "C"):
            if phase_name not in phases_present:
                continue
            task = Task(
                index=index,
                phase=Phase(phase_name),
                iteration=iteration,
                cost=phase_costs[phase_name],
            )
            tasks.append(task)
            task_index_of[(phase_name, iteration)] = index
            index += 1

    graph = TaskGraph(tasks)

    # Deterministic misspeculation pattern from the decisions' expected rates.
    combined_rate = 0.0
    for decision in partition.decisions:
        combined_rate = max(combined_rate, decision.expected_rate)
    if combined_rate > 0.0 and "B" in phases_present:
        interval = max(2, round(1.0 / combined_rate))
        for iteration in range(interval, iterations, interval):
            source = task_index_of.get(("B", iteration - 1))
            target = task_index_of.get(("B", iteration))
            if source is not None and target is not None:
                graph.add_edge(
                    SerializationEdge(
                        source, target, reason="misspeculation", location=None
                    )
                )
    return graph
