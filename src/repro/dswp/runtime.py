"""An executable threaded DSWP pipeline runtime.

The performance numbers come from the simulator, but MTCG's *correctness*
story — stage threads communicating values through bounded queues, parallel
stage replicas consuming work in any order while phase C commits in
iteration order — deserves to be executable.  :class:`PipelineRuntime` runs
a real 3-stage pipeline on Python threads:

- one producer thread runs the phase-A function per iteration and pushes
  its result into a bounded work queue (blocking when full — the
  synchronization-array behaviour);
- N worker threads run the phase-B function on whatever iteration they
  dequeue (replication; any interleaving);
- one consumer thread reorders results and applies the phase-C function
  strictly in iteration order (in-order commit).

Python's GIL means no wall-clock speedup — the point is that the pipeline's
*outputs* are bit-identical to the sequential loop for any interleaving,
which the test suite checks under many worker counts and queue capacities.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.hw.queues import BlockingBoundedQueue

_STOP = object()


@dataclass
class PipelineStatistics:
    """Observed concurrency facts, for the tests' interleaving assertions."""

    iterations: int = 0
    worker_iterations: Dict[int, int] = field(default_factory=dict)
    out_of_order_completions: int = 0


class PipelineRuntime:
    """Runs produce/work/consume stage functions over ``iterations``.

    ``produce(i)`` returns the phase-A value for iteration *i*;
    ``work(i, value)`` is the replicated phase-B computation;
    ``consume(i, result)`` commits in strict iteration order (phase C).
    """

    def __init__(self, workers: int = 4, queue_capacity: int = 32) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.stats = PipelineStatistics()

    def run(
        self,
        iterations: int,
        produce: Callable[[int], Any],
        work: Callable[[int, Any], Any],
        consume: Callable[[int, Any], None],
    ) -> None:
        self.stats = PipelineStatistics(iterations=iterations)
        work_queue = BlockingBoundedQueue(self.queue_capacity, name="dswp.work")
        done_queue = BlockingBoundedQueue(
            self.queue_capacity + self.workers + 1, name="dswp.done"
        )
        errors: List[BaseException] = []

        def producer() -> None:
            try:
                for i in range(iterations):
                    work_queue.put((i, produce(i)))
            except BaseException as error:  # surface errors to the caller
                errors.append(error)
            finally:
                for _ in range(self.workers):
                    work_queue.put(_STOP)

        def worker(worker_id: int) -> None:
            try:
                while True:
                    item = work_queue.get()
                    if item is _STOP:
                        done_queue.put(_STOP)
                        return
                    i, value = item
                    self.stats.worker_iterations[worker_id] = (
                        self.stats.worker_iterations.get(worker_id, 0) + 1
                    )
                    done_queue.put((i, work(i, value)))
            except BaseException as error:
                errors.append(error)
                done_queue.put(_STOP)

        def consumer() -> None:
            try:
                pending: Dict[int, Any] = {}
                next_commit = 0
                stops = 0
                while stops < self.workers:
                    item = done_queue.get()
                    if item is _STOP:
                        stops += 1
                        continue
                    i, result = item
                    if i != next_commit:
                        self.stats.out_of_order_completions += 1
                    pending[i] = result
                    while next_commit in pending:
                        consume(next_commit, pending.pop(next_commit))
                        next_commit += 1
                # Drain anything the workers finished after the last stop.
                while next_commit in pending:
                    consume(next_commit, pending.pop(next_commit))
                    next_commit += 1
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=producer, name="dswp-A")]
        threads += [
            threading.Thread(target=worker, args=(w,), name=f"dswp-B{w}")
            for w in range(self.workers)
        ]
        threads.append(threading.Thread(target=consumer, name="dswp-C"))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
