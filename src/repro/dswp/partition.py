"""Speculative PS-DSWP partitioning.

Pipeline stages are contiguous slices of the SCC-DAG's topological order, so
all inter-stage dependences flow forward (through queues).  The parallel
stage is chosen as the contiguous run of *doall* SCCs (no internal
loop-carried dependence) with the greatest total cost — the replication
candidate.  Everything before it forms the sequential produce stage (phase
A), everything after the sequential consume stage (phase C).

Speculation happens first: edges the profiles say are breakable are marked
speculated on the PDG, which can merge or split SCCs and, critically, strip
the loop-carried flags that disqualify SCCs from the parallel stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.pdg.builder import build_loop_pdg
from repro.pdg.graph import PDG
from repro.pdg.scc import SCC, SCCDag, condense
from repro.speculation.base import SpeculationDecision
from repro.speculation.manager import PdgSpeculationConfig, speculate_pdg


class StageKind(Enum):
    """Sequential stages run on one core; parallel stages replicate."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"  # replicable: no internal loop-carried dependences


@dataclass
class Stage:
    """One pipeline stage: a contiguous run of SCCs in topological order."""

    kind: StageKind
    phase: str  # "A", "B" or "C"
    sccs: List[SCC] = field(default_factory=list)

    @property
    def cost(self) -> int:
        return sum(scc.cost for scc in self.sccs)

    @property
    def node_ids(self) -> List[int]:
        ids: List[int] = []
        for scc in self.sccs:
            ids.extend(sorted(scc.node_ids))
        return ids

    def __repr__(self) -> str:
        return (
            f"Stage({self.phase}, {self.kind.value}, {len(self.sccs)} SCCs, "
            f"cost={self.cost})"
        )


@dataclass
class Partition:
    """The result of partitioning one loop."""

    loop: Loop
    pdg: PDG
    dag: SCCDag
    stages: List[Stage]
    decisions: List[SpeculationDecision] = field(default_factory=list)

    @property
    def parallel_stage(self) -> Optional[Stage]:
        for stage in self.stages:
            if stage.kind is StageKind.PARALLEL:
                return stage
        return None

    @property
    def parallel_fraction(self) -> float:
        total = sum(stage.cost for stage in self.stages)
        parallel = self.parallel_stage
        if total == 0 or parallel is None:
            return 0.0
        return parallel.cost / total

    def stage_of_node(self, node_id: int) -> Stage:
        for stage in self.stages:
            if node_id in stage.node_ids:
                return stage
        raise KeyError(f"node {node_id} not in any stage")

    def validate(self) -> None:
        """All effective PDG edges must flow forward through the pipeline."""
        order = {stage.phase: i for i, stage in enumerate(self.stages)}
        placement: Dict[int, int] = {}
        for stage in self.stages:
            for node_id in stage.node_ids:
                placement[node_id] = order[stage.phase]
        for edge in self.pdg.effective_edges():
            if edge.loop_carried:
                continue  # carried edges target the *next* iteration
            if placement[edge.source] > placement[edge.target]:
                raise ValueError(
                    f"backward inter-stage dependence {edge.describe()}"
                )

    def task_graph(self, iterations: int):
        """Synthesize a simulatable task graph; see :mod:`repro.dswp.mtcg`."""
        from repro.dswp.mtcg import synthesize_task_graph

        return synthesize_task_graph(self, iterations)

    def communication_summary(self) -> Dict[Tuple[str, str], int]:
        """Values flowing between stages per iteration — the queue traffic.

        For each ordered stage pair (producer phase, consumer phase), counts
        the distinct producing instructions whose effective PDG edges cross
        the boundary.  MTCG materializes one queue slot per such value per
        iteration; the result is what sizes the machine's 256-queue budget
        (Section 3.1).
        """
        phase_of: Dict[int, str] = {}
        for stage in self.stages:
            for node_id in stage.node_ids:
                phase_of[node_id] = stage.phase
        traffic: Dict[Tuple[str, str], set] = {}
        for edge in self.pdg.effective_edges():
            source_phase = phase_of[edge.source]
            target_phase = phase_of[edge.target]
            if source_phase == target_phase:
                continue
            traffic.setdefault((source_phase, target_phase), set()).add(edge.source)
        return {pair: len(sources) for pair, sources in sorted(traffic.items())}

    def queues_required(self, replication_width: int) -> int:
        """Physical queues MTCG needs at a given parallel-stage width."""
        summary = self.communication_summary()
        total = 0
        for (source_phase, target_phase), values in summary.items():
            fan = replication_width if "B" in (source_phase, target_phase) else 1
            total += values * fan
        return total

    def describe(self) -> str:
        lines = [f"Partition of loop {self.loop.header.name!r}:"]
        for stage in self.stages:
            lines.append(f"  {stage!r}")
        if self.decisions:
            lines.append("  speculation:")
            for decision in self.decisions:
                lines.append(f"    {decision}")
        return "\n".join(lines)


def partition_loop(
    program: Program,
    loop: Loop,
    *,
    branch_profile=None,
    value_profile=None,
    memory_conflict_rates: Optional[Dict[Tuple[int, int], float]] = None,
    speculation_config: Optional[PdgSpeculationConfig] = None,
    iterations: int = 64,
) -> Partition:
    """Build PDG → speculate → condense → pick stages.

    ``iterations`` is only a hint carried to :meth:`Partition.task_graph`
    callers; partitioning itself is static.
    """
    pdg = build_loop_pdg(program, loop)
    decisions = speculate_pdg(
        pdg,
        branch_profile=branch_profile,
        value_profile=value_profile,
        memory_conflict_rates=memory_conflict_rates,
        config=speculation_config,
    )
    dag = condense(pdg)
    topo = dag.topological_order()

    best_run = _best_doall_run(topo)
    stages: List[Stage] = []
    if best_run is None:
        # No replicable stage at all: classic 2-stage DSWP (A feeds C).
        middle = len(topo) // 2 if len(topo) > 1 else 1
        stages.append(Stage(StageKind.SEQUENTIAL, "A", topo[:middle]))
        if topo[middle:]:
            stages.append(Stage(StageKind.SEQUENTIAL, "C", topo[middle:]))
    else:
        start, end = best_run
        if topo[:start]:
            stages.append(Stage(StageKind.SEQUENTIAL, "A", topo[:start]))
        stages.append(Stage(StageKind.PARALLEL, "B", topo[start:end]))
        if topo[end:]:
            stages.append(Stage(StageKind.SEQUENTIAL, "C", topo[end:]))

    partition = Partition(loop=loop, pdg=pdg, dag=dag, stages=stages, decisions=decisions)
    partition.validate()
    return partition


def _best_doall_run(topo: List[SCC]) -> Optional[Tuple[int, int]]:
    """The contiguous run of doall SCCs with maximal total cost, as (start, end)."""
    best: Optional[Tuple[int, int]] = None
    best_cost = 0
    start = None
    cost = 0
    for i, scc in enumerate(topo + [None]):  # sentinel flushes the last run
        if scc is not None and scc.doall:
            if start is None:
                start = i
                cost = 0
            cost += scc.cost
            continue
        if start is not None and cost > best_cost:
            best = (start, i)
            best_cost = cost
        start = None
        cost = 0
    return best
