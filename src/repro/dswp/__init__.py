"""Decoupled Software Pipelining, extended per Section 2.1.

Classic DSWP (Ottoni et al. [20], Rangan et al. [26]) splits a loop's PDG
SCC-DAG into pipeline stages with forward-only inter-stage dependences.  The
paper's framework extends it with:

- **speculation** — PDG edges broken by alias/value/control speculation are
  ignored during partitioning (:func:`repro.speculation.manager.speculate_pdg`
  marks them; the SCC condensation skips them);
- **parallel-stage replication** — a stage whose SCCs carry no loop-carried
  dependence may run many iterations concurrently ("allowing different
  iterations to run in parallel on the same static code, similar to TLS");
- the resulting three-phase A/B/C shape of Section 3.2.

Modules:

- :mod:`repro.dswp.partition` — speculative PS-DSWP partitioning;
- :mod:`repro.dswp.balance` — optimal contiguous stage balancing for classic
  (non-replicated) DSWP, used as a baseline;
- :mod:`repro.dswp.mtcg` — multithreaded "code generation": lowering a
  partition to the task graph the simulator executes.
"""

from repro.dswp.balance import balance_stages
from repro.dswp.mtcg import synthesize_task_graph
from repro.dswp.multistage import (
    MultiStageResult,
    MultiStageSimulator,
    partition_loop_multistage,
)
from repro.dswp.partition import Partition, Stage, StageKind, partition_loop

__all__ = [
    "MultiStageResult",
    "MultiStageSimulator",
    "Partition",
    "Stage",
    "StageKind",
    "balance_stages",
    "partition_loop",
    "partition_loop_multistage",
    "synthesize_task_graph",
]
