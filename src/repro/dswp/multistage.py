"""Generalized multi-stage PS-DSWP (an extension beyond the paper).

The paper's evaluation uses exactly three phases: one sequential producer,
one replicated parallel stage, one sequential consumer (Section 3.2).  That
shape loses when a loop has *two* heavy DOALL regions separated by a
sequential recurrence — the 3-phase plan must leave one of them in a
sequential stage.  This module generalizes both halves:

- :func:`partition_loop_multistage` emits an alternating chain of
  sequential / parallel stages directly from the SCC-DAG's topological
  order (every maximal doall run becomes its own parallel stage);
- :class:`MultiStageSimulator` schedules any such chain: sequential stages
  get one dedicated core each, parallel stages share the remaining cores
  (allocated proportionally to stage cost), bounded queues connect adjacent
  stages, and serialization edges are honored exactly as in the 3-phase
  simulator.

The ablation benchmark shows where this wins and verifies it reduces to the
paper's model on 3-phase shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dswp.partition import Partition, Stage, StageKind
from repro.hw.machine import MachineConfig
from repro.hw.queues import TimedQueueModel
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.pdg.scc import SCC, condense
from repro.speculation.manager import PdgSpeculationConfig, speculate_pdg


def partition_loop_multistage(
    program: Program,
    loop: Loop,
    *,
    branch_profile=None,
    value_profile=None,
    memory_conflict_rates=None,
    speculation_config: Optional[PdgSpeculationConfig] = None,
    min_stage_cost: int = 1,
) -> Partition:
    """Partition ``loop`` into an alternating seq/par stage chain.

    Consecutive doall SCCs merge into one parallel stage; consecutive
    non-doall SCCs merge into one sequential stage.  Stage phases are
    numbered ``S0, P1, S2, ...`` in pipeline order.
    """
    from repro.pdg.builder import build_loop_pdg

    pdg = build_loop_pdg(program, loop)
    decisions = speculate_pdg(
        pdg,
        branch_profile=branch_profile,
        value_profile=value_profile,
        memory_conflict_rates=memory_conflict_rates,
        config=speculation_config,
    )
    dag = condense(pdg)
    topo = dag.topological_order()

    stages: List[Stage] = []
    for scc in topo:
        kind = StageKind.PARALLEL if scc.doall else StageKind.SEQUENTIAL
        if stages and stages[-1].kind is kind:
            stages[-1].sccs.append(scc)
        else:
            prefix = "P" if kind is StageKind.PARALLEL else "S"
            stages.append(Stage(kind, f"{prefix}{len(stages)}", [scc]))

    partition = Partition(loop=loop, pdg=pdg, dag=dag, stages=stages,
                          decisions=decisions)
    # The 3-phase validator keys off phase names; multi-stage order is the
    # list order, checked here directly.
    _validate_multistage(partition)
    return partition


def _validate_multistage(partition: Partition) -> None:
    placement: Dict[int, int] = {}
    for position, stage in enumerate(partition.stages):
        for node_id in stage.node_ids:
            placement[node_id] = position
    for edge in partition.pdg.effective_edges():
        if edge.loop_carried:
            continue
        if placement[edge.source] > placement[edge.target]:
            raise ValueError(f"backward inter-stage dependence {edge.describe()}")


@dataclass
class MultiStageResult:
    """Outcome of a multi-stage pipeline simulation."""

    machine: MachineConfig
    makespan: int
    sequential_time: int
    core_allocation: List[int] = field(default_factory=list)  # cores per stage

    @property
    def speedup(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.sequential_time / self.makespan


class MultiStageSimulator:
    """Schedules an alternating seq/par stage chain over ``iterations``."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def allocate_cores(self, stages: Sequence[Stage]) -> List[int]:
        """One core per sequential stage; parallel stages split the rest.

        Distribution is water-filling: every parallel stage starts with one
        core, then each spare core goes to the stage with the highest
        remaining per-core cost — the allocation that minimizes the pipeline
        bottleneck for fixed integer shares.
        """
        allocation = [1] * len(stages)
        parallel_indices = [
            i for i, stage in enumerate(stages) if stage.kind is StageKind.PARALLEL
        ]
        spare = self.machine.cores - len(stages)
        for _ in range(max(spare, 0)):
            if not parallel_indices:
                break
            best = max(
                parallel_indices,
                key=lambda i: (stages[i].cost / allocation[i], -i),
            )
            allocation[best] += 1
        return allocation

    def simulate(self, partition: Partition, iterations: int) -> MultiStageResult:
        stages = partition.stages
        if self.machine.cores <= len(stages):
            # Not enough cores to pipeline: sequential baseline.
            total = sum(stage.cost for stage in stages) * iterations
            return MultiStageResult(self.machine, total, total, [1] * len(stages))

        allocation = self.allocate_cores(stages)
        capacity = self.machine.queue_capacity
        latency = self.machine.communication_latency

        # Per-stage state.
        chain_end = [0] * len(stages)                     # sequential chains
        pools: List[Dict[int, int]] = []                  # parallel core pools
        for index, stage in enumerate(stages):
            pools.append({c: 0 for c in range(allocation[index])})
        queues: List[Dict[int, TimedQueueModel]] = [
            {} for _ in range(len(stages))
        ]  # queues[s][consumer_core] between stage s-1 and s

        makespan = 0
        for iteration in range(iterations):
            previous_end = 0
            for index, stage in enumerate(stages):
                cost = stage.cost
                if stage.kind is StageKind.SEQUENTIAL:
                    ready = max(chain_end[index], previous_end + (latency if index else 0))
                    if index > 0:
                        queue = queues[index].setdefault(
                            0, TimedQueueModel(capacity, name=f"q{index}")
                        )
                        queue.record_produce(previous_end)
                        ready = max(ready, queue.record_consume(ready))
                    end = ready + cost
                    chain_end[index] = end
                else:
                    pool = pools[index]
                    core = min(pool, key=lambda c: (pool[c], c))
                    ready = max(pool[core], previous_end + (latency if index else 0))
                    if index > 0:
                        queue = queues[index].setdefault(
                            core, TimedQueueModel(capacity, name=f"q{index}.{core}")
                        )
                        queue.record_produce(previous_end)
                        ready = max(ready, queue.record_consume(ready))
                    end = ready + cost
                    pool[core] = end
                previous_end = end
            makespan = max(makespan, previous_end)

        sequential_time = sum(stage.cost for stage in stages) * iterations
        return MultiStageResult(self.machine, makespan, sequential_time, allocation)
