"""repro — a reproduction of *Revisiting the Sequential Programming Model for
Multi-Core* (Bridges, Vachharajani, Zhang, Jablin, August — MICRO 2007).

The package implements, from scratch, the full system the paper describes:

- a compiler intermediate representation with whole-program scope
  (:mod:`repro.ir`) and the static analyses the framework needs
  (:mod:`repro.analysis`);
- profiling infrastructure that stands in for the paper's pfmon-based native
  measurement (:mod:`repro.profiling`);
- the program dependence graph and its SCC condensation (:mod:`repro.pdg`);
- alias / value / control / silent-store speculation (:mod:`repro.speculation`);
- the paper's two sequential-model extensions, *Y-branch* and *Commutative*
  (:mod:`repro.annotations`);
- Decoupled Software Pipelining with speculation and parallel-stage
  replication (:mod:`repro.dswp`) plus a TLS baseline (:mod:`repro.tls`);
- an event-driven multicore hardware model with versioned memory and
  bounded inter-core queues (:mod:`repro.hw`);
- the parallelization framework itself — tasks, phases, execution plans,
  simulation, and reporting (:mod:`repro.core`);
- executable analogs of the eleven SPEC CINT2000 C benchmarks
  (:mod:`repro.workloads`).

The most common entry points are re-exported lazily here, so ``import repro``
stays cheap and subpackages can be used in isolation.
"""

__version__ = "1.0.0"

_EXPORTS = {
    "FrameworkConfig": ("repro.core.framework", "FrameworkConfig"),
    "ParallelizationFramework": ("repro.core.framework", "ParallelizationFramework"),
    "SpeedupReport": ("repro.core.report", "SpeedupReport"),
    "moores_law_speedup": ("repro.core.report", "moores_law_speedup"),
    "Phase": ("repro.core.tasks", "Phase"),
    "Task": ("repro.core.tasks", "Task"),
    "TaskGraph": ("repro.core.tasks", "TaskGraph"),
    "commutative": ("repro.annotations.commutative", "commutative"),
    "ybranch": ("repro.annotations.ybranch", "ybranch"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
