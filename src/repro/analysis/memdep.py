"""Memory dependence construction.

Connects every pair of memory operations that may conflict (RAW, WAR, WAW)
according to the alias oracle.  For a chosen loop, dependences are classified
intra-iteration vs. loop-carried using block ordering within the loop body:
a conflict from instruction A to instruction B is *intra-iteration* when A
can reach B without crossing the loop back edge, and *loop-carried* when the
only path crosses the latch.  Conservatively a conflict may be both.

Silent stores (Section 2.1, [15]) are flagged so the speculation layer can
ignore them as misspeculation sources; *Commutative* callees contribute no
dependences on their internal state (Section 2.3.2).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from repro.analysis.alias import AliasAnalysis
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction
from repro.ir.loops import Loop
from repro.ir.program import Program


class MemoryDependence(NamedTuple):
    """A may-conflict between two memory instructions.

    ``kind`` is one of ``"raw"``, ``"war"``, ``"waw"``; ``loop_carried`` /
    ``intra_iteration`` report the path classification (both may be True).
    """

    source: Instruction
    target: Instruction
    kind: str
    loop_carried: bool
    intra_iteration: bool


class MemoryDependenceAnalysis:
    """Memory dependences for one loop region of a program."""

    def __init__(self, program: Program, function: Function, loop: Optional[Loop] = None,
                 alias: Optional[AliasAnalysis] = None) -> None:
        self.program = program
        self.function = function
        self.loop = loop
        self.alias = alias or AliasAnalysis(program)
        self._dependences: List[MemoryDependence] = []
        self._compute()

    # -- helpers -------------------------------------------------------------------

    def _instructions(self) -> List[Instruction]:
        if self.loop is not None:
            return [i for i in self.loop.instructions()]
        return list(self.function.instructions())

    def _is_commutative_call(self, instruction: Instruction) -> bool:
        if not isinstance(instruction, Call) or instruction.callee is None:
            return False
        if not self.program.has_function(instruction.callee):
            return False
        return self.program.function(instruction.callee).commutative_group is not None

    def _commutative_group(self, instruction: Instruction) -> Optional[str]:
        if not self._is_commutative_call(instruction):
            return None
        return self.program.function(instruction.callee).commutative_group

    def _block_order(self) -> Dict[str, int]:
        blocks = (
            [b.name for b in self.loop.body_blocks()]
            if self.loop is not None
            else [b.name for b in self.function.blocks]
        )
        return {name: index for index, name in enumerate(blocks)}

    # -- main computation ------------------------------------------------------------

    def _compute(self) -> None:
        instructions = [
            i for i in self._instructions() if i.reads_memory or i.writes_memory
        ]
        order = self._block_order()
        position: Dict[int, int] = {}
        for instruction in instructions:
            block = instruction.block
            if block is None:
                continue
            base = order.get(block.name, 0) * 10_000
            position[instruction.id] = base + block.instructions.index(instruction)

        for i, a in enumerate(instructions):
            for b in instructions[i:]:
                self._consider_pair(a, b, position)
                if a is not b:
                    self._consider_pair(b, a, position)

    def _consider_pair(self, a: Instruction, b: Instruction, position: Dict[int, int]) -> None:
        kind = _dependence_kind(a, b)
        if kind is None:
            return
        group_a = self._commutative_group(a)
        group_b = self._commutative_group(b)
        if group_a is not None and group_a == group_b:
            # Calls within one Commutative group may execute in any order:
            # their mutual state dependence is erased (Section 2.3.2).
            return
        if not self.alias.may_alias(a, b):
            return

        if self.loop is None:
            if position.get(a.id, 0) <= position.get(b.id, 0):
                self._dependences.append(MemoryDependence(a, b, kind, False, True))
            return

        pos_a = position.get(a.id, 0)
        pos_b = position.get(b.id, 0)
        intra = pos_a <= pos_b
        # Within a loop every conflict can also recur across the back edge
        # unless the written object is privatized per-iteration; the
        # speculation layer later decides which carried edges to break.
        self._dependences.append(MemoryDependence(a, b, kind, True, intra))

    # -- queries -----------------------------------------------------------------------

    @property
    def dependences(self) -> List[MemoryDependence]:
        return list(self._dependences)

    def loop_carried(self) -> List[MemoryDependence]:
        return [d for d in self._dependences if d.loop_carried]

    def involving(self, instruction: Instruction) -> List[MemoryDependence]:
        return [
            d for d in self._dependences
            if d.source is instruction or d.target is instruction
        ]

    def conflicting_pairs(self) -> Set[tuple]:
        return {(d.source.id, d.target.id, d.kind) for d in self._dependences}


def _dependence_kind(a: Instruction, b: Instruction) -> Optional[str]:
    """RAW/WAR/WAW classification from a's and b's access modes, else None."""
    if a.writes_memory and b.reads_memory:
        return "raw"
    if a.reads_memory and b.writes_memory:
        return "war"
    if a.writes_memory and b.writes_memory:
        if a is b:
            return None
        return "waw"
    return None
