"""Register (data-flow) dependences.

With SSA-style single definitions, a register dependence is simply
definition → use.  Loop-carried register dependences flow through Phi nodes
at loop headers whose incoming edge is the latch.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.loops import Loop
from repro.ir.values import VirtualRegister


class RegisterDependence(NamedTuple):
    """A def→use edge between instructions."""

    source: Instruction
    target: Instruction
    register: VirtualRegister
    loop_carried: bool


def register_dependences(
    function: Function, loop: Optional[Loop] = None
) -> List[RegisterDependence]:
    """All register dependences in ``function`` (or restricted to ``loop``).

    A dependence is loop-carried when it flows through a header Phi via the
    latch edge — the def executes in iteration *i*, the use in *i+1*.
    """
    in_scope = None
    if loop is not None:
        in_scope = {i.id for i in loop.instructions()}

    definitions: Dict[int, Instruction] = {}
    for instruction in function.instructions():
        if instruction.result is not None:
            definitions[instruction.result.id] = instruction

    latch_names = {latch.name for latch in loop.latches} if loop is not None else set()
    edges: List[RegisterDependence] = []

    for instruction in function.instructions():
        if in_scope is not None and instruction.id not in in_scope:
            continue
        if isinstance(instruction, Phi):
            for value, block_name in instruction.incoming():
                if not isinstance(value, VirtualRegister):
                    continue
                source = definitions.get(value.id)
                if source is None:
                    continue
                if in_scope is not None and source.id not in in_scope:
                    continue
                carried = block_name in latch_names
                edges.append(RegisterDependence(source, instruction, value, carried))
            continue
        for operand in instruction.register_uses():
            if not isinstance(operand, VirtualRegister):
                continue
            source = definitions.get(operand.id)
            if source is None:
                continue
            if in_scope is not None and source.id not in in_scope:
                continue
            edges.append(RegisterDependence(source, instruction, operand, False))
    return edges
