"""Register liveness, a backward may-analysis over virtual registers.

Used by the DSWP code generator to decide which register values must flow
between pipeline stages through communication queues.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import Parameter, Value, VirtualRegister


class Liveness:
    """Live-in / live-out register sets per block, plus per-instruction uses."""

    def __init__(self, function: Function) -> None:
        self.function = function
        problem = DataflowProblem(
            direction="backward",
            meet="union",
            transfer=self._transfer,
            boundary=frozenset(),
        )
        self._facts = solve_dataflow(function, problem)

    @staticmethod
    def _transfer(block: BasicBlock, live_out: FrozenSet[Value]) -> FrozenSet[Value]:
        live: Set[Value] = set(live_out)
        for instruction in reversed(block.instructions):
            if instruction.result is not None:
                live.discard(instruction.result)
            # Phi operands are live along specific edges; conservatively treat
            # them live into the block — sound for queue-sizing purposes.
            for operand in instruction.register_uses():
                if isinstance(operand, (VirtualRegister, Parameter)):
                    live.add(operand)
        return frozenset(live)

    def live_in(self, block_name: str) -> FrozenSet[Value]:
        return self._facts[block_name]["in"]

    def live_out(self, block_name: str) -> FrozenSet[Value]:
        return self._facts[block_name]["out"]

    def live_registers(self) -> Dict[str, FrozenSet[Value]]:
        return {name: facts["in"] for name, facts in self._facts.items()}
