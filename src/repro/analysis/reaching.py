"""Reaching definitions over memory objects, a forward may-analysis.

A "definition" here is a store (or side-effecting call) to an abstract
memory object; the memory dependence analysis consumes the per-block in-sets
to connect loads to the stores that may feed them across block boundaries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction

#: A definition fact: (instruction id, memory object id).
Definition = Tuple[int, int]


class ReachingDefinitions:
    """Which (store, object) pairs may reach each block boundary."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._instructions_by_id: Dict[int, Instruction] = {
            i.id: i for i in function.instructions()
        }
        problem = DataflowProblem(
            direction="forward",
            meet="union",
            transfer=self._transfer,
            boundary=frozenset(),
        )
        self._facts = solve_dataflow(function, problem)

    @staticmethod
    def _transfer(block: BasicBlock, reaching_in: FrozenSet[Definition]) -> FrozenSet[Definition]:
        live: Set[Definition] = set(reaching_in)
        for instruction in block.instructions:
            if not instruction.writes_memory:
                continue
            written = {obj.id for obj in instruction.memory_objects()}
            # A store to a single unambiguous object kills prior defs of it.
            # With may-aliasing (multiple objects), the write is not a kill.
            if len(written) == 1:
                only = next(iter(written))
                live = {d for d in live if d[1] != only}
            for obj_id in written:
                live.add((instruction.id, obj_id))
        return frozenset(live)

    def reaching_in(self, block_name: str) -> FrozenSet[Definition]:
        return self._facts[block_name]["in"]

    def reaching_out(self, block_name: str) -> FrozenSet[Definition]:
        return self._facts[block_name]["out"]

    def defining_instruction(self, definition: Definition) -> Instruction:
        return self._instructions_by_id[definition[0]]
