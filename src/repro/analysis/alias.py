"""Alias analysis: Andersen-style points-to plus a may-alias oracle.

The paper's framework leans on "aggressive alias analysis [5]" (modular
interprocedural pointer analysis using access paths) to avoid over-estimating
memory dependences.  Here pointers are IR values, pointees are
:class:`~repro.ir.values.MemoryObject` abstract locations, and constraints are
gathered over the whole program:

- ``p = alloc``            →  {obj(alloc)} ⊆ pts(p)
- ``p = @global``          →  {global} ⊆ pts(p)      (address-of)
- ``q = p`` (copy/phi)     →  pts(p) ⊆ pts(q)
- ``q = load p``           →  pts(*p) ⊆ pts(q) for loads whose objects hold pointers
- ``store q -> p``         →  pts(q) ⊆ pts(*p)

Solved by a straightforward worklist over inclusion constraints.  Two memory
operations may alias iff their may-access object sets intersect after
points-to refinement.  Field-sensitive objects (``MemoryObject.field``) never
alias across distinct fields of the same base — this is what the gcc case
study's bit-flag expansion buys (Section 4.2.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.ir.instructions import Alloc, Call, Instruction, Load, Phi, Store
from repro.ir.program import Program
from repro.ir.values import MemoryObject, Value


class AliasResult:
    """Three-valued alias answers, ordered by certainty."""

    NO = "no-alias"
    MAY = "may-alias"
    MUST = "must-alias"


class AliasAnalysis:
    """Whole-program inclusion-based points-to analysis."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: pts(value id) — objects a pointer value may point to.
        self._points_to: Dict[int, Set[MemoryObject]] = defaultdict(set)
        #: heap(object id) — objects stored *inside* an object's cells.
        self._heap: Dict[int, Set[MemoryObject]] = defaultdict(set)
        self._copy_edges: Dict[int, Set[int]] = defaultdict(set)
        self._load_edges: List[Tuple[Value, Value]] = []   # (address, result)
        self._store_edges: List[Tuple[Value, Value]] = []  # (value, address)
        self._objects: Dict[int, MemoryObject] = {}
        self._collect_constraints()
        self._solve()

    # -- constraint generation ---------------------------------------------------

    def _collect_constraints(self) -> None:
        for var in self.program.globals:
            self._objects[var.id] = var
        for instruction in self.program.instructions():
            self._visit(instruction)

    def _visit(self, instruction: Instruction) -> None:
        if isinstance(instruction, Alloc):
            self._objects[instruction.object.id] = instruction.object
            self._points_to[instruction.result.id].add(instruction.object)
        elif isinstance(instruction, Phi):
            for operand in instruction.operands:
                self._add_copy(operand, instruction.result)
        elif isinstance(instruction, Load):
            address = instruction.operands[0]
            self._seed_address(address)
            self._load_edges.append((address, instruction.result))
            for obj in instruction.may_access:
                self._objects[obj.id] = obj
        elif isinstance(instruction, Store):
            value, address = instruction.operands
            self._seed_address(address)
            self._seed_address(value)
            self._store_edges.append((value, address))
            for obj in instruction.may_access:
                self._objects[obj.id] = obj
        elif isinstance(instruction, Call):
            # Arguments may flow into the callee's parameters; model
            # conservatively by copying argument points-to into the result.
            if instruction.result is not None:
                for operand in instruction.operands:
                    self._add_copy(operand, instruction.result)
            for obj in instruction.reads + instruction.writes:
                self._objects[obj.id] = obj
        else:
            # Arithmetic on pointers propagates pointees (p+1 aliases p's object).
            if instruction.result is not None:
                for operand in instruction.operands:
                    self._add_copy(operand, instruction.result)

    def _seed_address(self, value: Value) -> None:
        if isinstance(value, MemoryObject):
            self._objects[value.id] = value
            self._points_to[value.id].add(value)

    def _add_copy(self, source: Value, target: Value) -> None:
        self._seed_address(source)
        self._copy_edges[source.id].add(target.id)

    # -- solving --------------------------------------------------------------------

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for source_id, targets in self._copy_edges.items():
                source_set = self._points_to.get(source_id, set())
                for target_id in targets:
                    before = len(self._points_to[target_id])
                    self._points_to[target_id] |= source_set
                    if len(self._points_to[target_id]) != before:
                        changed = True
            for value, address in self._store_edges:
                value_set = self._points_to.get(value.id, set())
                for obj in self._points_to.get(address.id, set()):
                    before = len(self._heap[obj.id])
                    self._heap[obj.id] |= value_set
                    if len(self._heap[obj.id]) != before:
                        changed = True
            for address, result in self._load_edges:
                for obj in self._points_to.get(address.id, set()):
                    source_set = self._heap.get(obj.id, set())
                    before = len(self._points_to[result.id])
                    self._points_to[result.id] |= source_set
                    if len(self._points_to[result.id]) != before:
                        changed = True

    # -- queries ----------------------------------------------------------------------

    def points_to(self, value: Value) -> FrozenSet[MemoryObject]:
        return frozenset(self._points_to.get(value.id, set()))

    def objects_accessed(self, instruction: Instruction) -> FrozenSet[MemoryObject]:
        """Refined may-access set: declared objects ∩-refined by points-to.

        For loads/stores whose address has a non-empty points-to set, the
        refined set is the intersection of the declared ``may_access`` with
        what the address can actually reach; when points-to knows nothing the
        declared set stands.
        """
        declared = set(instruction.memory_objects())
        if isinstance(instruction, (Load, Store)):
            address = instruction.operands[-1] if isinstance(instruction, Store) else instruction.operands[0]
            reachable = self._points_to.get(address.id, set())
            if reachable:
                refined = {o for o in declared if o in reachable}
                if refined:
                    return frozenset(refined)
        return frozenset(declared)

    def alias(self, a: Instruction, b: Instruction) -> str:
        """May/must/no-alias between two memory instructions."""
        set_a = self.objects_accessed(a)
        set_b = self.objects_accessed(b)
        common = {
            (obj_a, obj_b)
            for obj_a in set_a
            for obj_b in set_b
            if self._objects_overlap(obj_a, obj_b)
        }
        if not common:
            return AliasResult.NO
        if (
            len(set_a) == 1
            and len(set_b) == 1
            and next(iter(set_a)).id == next(iter(set_b)).id
        ):
            return AliasResult.MUST
        return AliasResult.MAY

    @staticmethod
    def _objects_overlap(a: MemoryObject, b: MemoryObject) -> bool:
        if a.id == b.id:
            return True
        # Distinct fields of the same base never overlap (field splitting,
        # Section 4.2.1); distinct objects never overlap.
        if a.name == b.name and a.field and b.field and a.field != b.field:
            return False
        if a.name == b.name and (a.field or b.field) and a.field != b.field:
            # base vs. field of same name: conservatively may overlap
            return True
        return False

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        return self.alias(a, b) != AliasResult.NO

    def all_objects(self) -> Iterable[MemoryObject]:
        return list(self._objects.values())
