"""Value-range propagation ("variable value analysis [22]").

A small abstract interpreter over intervals with a widening threshold.
Two uses in the framework:

- *constant discovery*: "proving that a variable holds a constant value at a
  certain program point can be invaluable in unlocking parallelism"
  (Section 2.1) — constant-valued branch conditions kill control dependences;
- *branch bias*: comparisons between disjoint ranges are statically decided,
  which feeds control speculation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Instruction, Phi, UnOp
from repro.ir.values import Constant, Value

_NEG_INF = float("-inf")
_POS_INF = float("inf")
_WIDEN_AFTER = 16  # updates before an interval is widened to ±inf


class ValueRange:
    """A closed interval [low, high]; ±inf encodes unbounded ends."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        self.low = low
        self.high = high

    @classmethod
    def constant(cls, value: float) -> "ValueRange":
        return cls(value, value)

    @classmethod
    def top(cls) -> "ValueRange":
        return cls(_NEG_INF, _POS_INF)

    @property
    def is_constant(self) -> bool:
        return self.low == self.high and self.low not in (_NEG_INF, _POS_INF)

    def join(self, other: "ValueRange") -> "ValueRange":
        return ValueRange(min(self.low, other.low), max(self.high, other.high))

    def widen(self, other: "ValueRange") -> "ValueRange":
        low = self.low if other.low >= self.low else _NEG_INF
        high = self.high if other.high <= self.high else _POS_INF
        return ValueRange(low, high)

    def disjoint(self, other: "ValueRange") -> bool:
        return self.high < other.low or other.high < self.low

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ValueRange)
            and other.low == self.low
            and other.high == self.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"[{self.low}, {self.high}]"


def _arith(op: str, a: ValueRange, b: ValueRange) -> ValueRange:
    if op == "add":
        return ValueRange(a.low + b.low, a.high + b.high)
    if op == "sub":
        return ValueRange(a.low - b.high, a.high - b.low)
    if op == "mul":
        corners = [a.low * b.low, a.low * b.high, a.high * b.low, a.high * b.high]
        finite = [c for c in corners if c == c]  # drop NaN from inf*0
        if not finite:
            return ValueRange.top()
        return ValueRange(min(finite), max(finite))
    return ValueRange.top()


def _compare(op: str, a: ValueRange, b: ValueRange) -> Optional[bool]:
    """Statically decide a comparison when the ranges allow it."""
    if op == "lt" and a.high < b.low:
        return True
    if op == "lt" and a.low >= b.high:
        return False
    if op == "le" and a.high <= b.low:
        return True
    if op == "le" and a.low > b.high:
        return False
    if op == "gt" and a.low > b.high:
        return True
    if op == "gt" and a.high <= b.low:
        return False
    if op == "ge" and a.low >= b.high:
        return True
    if op == "ge" and a.high < b.low:
        return False
    if op == "eq" and a.is_constant and b.is_constant:
        return a.low == b.low
    if op == "eq" and a.disjoint(b):
        return False
    if op == "ne" and a.is_constant and b.is_constant:
        return a.low != b.low
    if op == "ne" and a.disjoint(b):
        return True
    return None


class ValueRangeAnalysis:
    """Intra-procedural interval analysis with widening."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._ranges: Dict[int, ValueRange] = {}
        self._updates: Dict[int, int] = {}
        self._run()

    def _run(self) -> None:
        changed = True
        iterations = 0
        while changed and iterations < 100:
            changed = False
            iterations += 1
            for instruction in self.function.instructions():
                new = self._evaluate(instruction)
                if new is None or instruction.result is None:
                    continue
                key = instruction.result.id
                old = self._ranges.get(key)
                if old is not None:
                    merged = old.join(new)
                    self._updates[key] = self._updates.get(key, 0) + 1
                    if self._updates[key] > _WIDEN_AFTER:
                        merged = old.widen(merged)
                    new = merged
                if old != new:
                    self._ranges[key] = new
                    changed = True

    def _evaluate(self, instruction: Instruction) -> Optional[ValueRange]:
        if isinstance(instruction, BinOp):
            a = self.range_of(instruction.operands[0])
            b = self.range_of(instruction.operands[1])
            if instruction.op in ("add", "sub", "mul"):
                return _arith(instruction.op, a, b)
            decided = _compare(instruction.op, a, b)
            if decided is not None:
                return ValueRange.constant(1.0 if decided else 0.0)
            return ValueRange(0.0, 1.0)
        if isinstance(instruction, UnOp):
            a = self.range_of(instruction.operands[0])
            if instruction.op == "neg":
                return ValueRange(-a.high, -a.low)
            return ValueRange.top()
        if isinstance(instruction, Phi):
            merged: Optional[ValueRange] = None
            for operand in instruction.operands:
                r = self.range_of(operand)
                merged = r if merged is None else merged.join(r)
            return merged
        if instruction.result is not None:
            return ValueRange.top()
        return None

    # -- queries -----------------------------------------------------------------

    def range_of(self, value: Value) -> ValueRange:
        if isinstance(value, Constant) and isinstance(value.value, (int, float)):
            return ValueRange.constant(float(value.value))
        return self._ranges.get(value.id, ValueRange.top())

    def constant_value(self, value: Value) -> Optional[float]:
        r = self.range_of(value)
        return r.low if r.is_constant else None

    def branch_statically_decided(self, condition: Value) -> Optional[bool]:
        """True/False when the branch condition is provably constant."""
        constant = self.constant_value(condition)
        if constant is None:
            return None
        return bool(constant)
