"""Dominator and post-dominator trees.

Implements the Cooper–Harvey–Kennedy "simple, fast dominance" algorithm over
reverse-postorder numbering.  Post-dominance runs the same engine on the
reversed CFG with a virtual exit that fuses all function exits (returns and
endless-loop latches are both handled).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.function import Function

VIRTUAL_EXIT = "<exit>"


class _DominanceEngine:
    """Shared fixed-point engine, parameterized by edge direction."""

    def __init__(self, nodes: List[str], preds: Dict[str, List[str]], root: str) -> None:
        self.root = root
        order = _reverse_postorder(nodes, preds, root)
        self._number = {name: i for i, name in enumerate(order)}
        self._order = order
        self.idom: Dict[str, Optional[str]] = {root: root}

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == root:
                    continue
                candidates = [p for p in preds.get(node, []) if p in self.idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(new_idom, other)
                if self.idom.get(node) != new_idom:
                    self.idom[node] = new_idom
                    changed = True
        self.idom[root] = None

    def _intersect(self, a: str, b: str) -> str:
        while a != b:
            while self._number[a] > self._number[b]:
                a = self.idom[a]  # type: ignore[assignment]
            while self._number[b] > self._number[a]:
                b = self.idom[b]  # type: ignore[assignment]
        return a

    def dominates(self, a: str, b: str) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def dominator_chain(self, node: str) -> List[str]:
        chain = [node]
        current = self.idom.get(node)
        while current is not None:
            chain.append(current)
            current = self.idom.get(current)
        return chain


def _reverse_postorder(nodes: List[str], preds: Dict[str, List[str]], root: str) -> List[str]:
    succs: Dict[str, List[str]] = {n: [] for n in nodes}
    for node, plist in preds.items():
        for p in plist:
            succs.setdefault(p, []).append(node)
    seen = set()
    postorder: List[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(succs.get(name, [])))]
        seen.add(name)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(succs.get(nxt, []))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    visit(root)
    return list(reversed(postorder))


class DominatorTree:
    """Forward dominance for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        nodes = [b.name for b in function.blocks]
        self._preds = {
            b.name: [p.name for p in b.predecessors()] for b in function.blocks
        }
        self._engine = _DominanceEngine(nodes, self._preds, function.entry_name)

    def dominates(self, a: str, b: str) -> bool:
        return self._engine.dominates(a, b)

    def immediate_dominator(self, name: str) -> Optional[str]:
        return self._engine.idom.get(name)

    def dominator_chain(self, name: str) -> List[str]:
        return self._engine.dominator_chain(name)

    def children(self, name: str) -> List[str]:
        """Blocks immediately dominated by ``name`` (dominator-tree kids)."""
        return sorted(
            node
            for node, idom in self._engine.idom.items()
            if idom == name and node != name
        )

    def frontier(self) -> Dict[str, List[str]]:
        """Dominance frontiers (Cytron et al.): DF[b] = blocks where b's
        dominance ends — exactly where SSA construction places phis."""
        frontiers: Dict[str, List[str]] = {b.name: [] for b in self.function.blocks}
        for block in self.function.blocks:
            predecessors = self._preds[block.name]
            if len(predecessors) < 2:
                continue
            idom = self.immediate_dominator(block.name)
            for predecessor in predecessors:
                runner: Optional[str] = predecessor
                while runner is not None and runner != idom:
                    if block.name not in frontiers[runner]:
                        frontiers[runner].append(block.name)
                    runner = self.immediate_dominator(runner)
        return frontiers


class PostDominatorTree:
    """Reverse dominance, with a virtual exit fusing all function exits."""

    def __init__(self, function: Function) -> None:
        self.function = function
        nodes = [b.name for b in function.blocks] + [VIRTUAL_EXIT]
        # Post-dominance = dominance on the reversed CFG: predecessors of a
        # node are its CFG successors; exits gain an edge to the virtual exit.
        preds: Dict[str, List[str]] = {VIRTUAL_EXIT: []}
        exit_blocks = [b.name for b in function.blocks if not b.successor_names()]
        if not exit_blocks:
            # Endless loop: treat every latch-reachable block conservatively
            # by connecting all blocks to the virtual exit.
            exit_blocks = [b.name for b in function.blocks]
        for block in function.blocks:
            preds[block.name] = list(block.successor_names())
            if block.name in exit_blocks:
                preds[block.name].append(VIRTUAL_EXIT)
        # Reversed direction: engine's "preds" are reverse-CFG predecessors,
        # i.e. CFG successors.  preds[VIRTUAL_EXIT] on the reversed graph are
        # the exit blocks themselves.
        reversed_preds: Dict[str, List[str]] = {n: [] for n in nodes}
        for node, successor_list in preds.items():
            for successor in successor_list:
                reversed_preds[node] = reversed_preds.get(node, [])
        for block in function.blocks:
            for successor in block.successor_names():
                reversed_preds[block.name].append(successor)
        for name in exit_blocks:
            reversed_preds[name].append(VIRTUAL_EXIT)
        self._engine = _DominanceEngine(nodes, reversed_preds, VIRTUAL_EXIT)

    def post_dominates(self, a: str, b: str) -> bool:
        return self._engine.dominates(a, b)

    def immediate_post_dominator(self, name: str) -> Optional[str]:
        return self._engine.idom.get(name)
