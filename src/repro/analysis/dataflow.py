"""A generic worklist dataflow engine over basic blocks.

Classic iterative fixed-point solving with set-valued facts.  Liveness and
reaching definitions instantiate it; other analyses (value-range) use their
own lattices but the same worklist discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function

Fact = FrozenSet
TransferFunction = Callable[[BasicBlock, Fact], Fact]


class DataflowProblem:
    """Description of one set-based dataflow problem.

    Attributes:
        direction: ``"forward"`` (facts flow entry→exit) or ``"backward"``.
        meet: ``"union"`` (may analysis) or ``"intersection"`` (must).
        transfer: per-block transfer function mapping in-fact to out-fact.
        boundary: fact at the entry (forward) or the exits (backward).
    """

    def __init__(
        self,
        direction: str,
        meet: str,
        transfer: TransferFunction,
        boundary: Fact = frozenset(),
    ) -> None:
        if direction not in ("forward", "backward"):
            raise ValueError(f"direction must be forward/backward, got {direction!r}")
        if meet not in ("union", "intersection"):
            raise ValueError(f"meet must be union/intersection, got {meet!r}")
        self.direction = direction
        self.meet = meet
        self.transfer = transfer
        self.boundary = boundary

    def apply_meet(self, facts: Iterable[Fact]) -> Fact:
        facts = list(facts)
        if not facts:
            return self.boundary if self.meet == "intersection" else frozenset()
        result = facts[0]
        for fact in facts[1:]:
            result = result | fact if self.meet == "union" else result & fact
        return result


def solve_dataflow(function: Function, problem: DataflowProblem) -> Dict[str, Dict[str, Fact]]:
    """Solve ``problem`` on ``function``.

    Returns ``{block_name: {"in": fact, "out": fact}}`` where "in"/"out" are
    relative to program order regardless of analysis direction.
    """
    blocks = function.blocks
    in_facts: Dict[str, Fact] = {b.name: frozenset() for b in blocks}
    out_facts: Dict[str, Fact] = {b.name: frozenset() for b in blocks}

    if problem.direction == "forward":
        in_facts[function.entry_name] = problem.boundary
        worklist = deque(blocks)
        while worklist:
            block = worklist.popleft()
            predecessors = block.predecessors()
            if block.name == function.entry_name:
                meet_inputs = [problem.boundary] + [out_facts[p.name] for p in predecessors]
            else:
                meet_inputs = [out_facts[p.name] for p in predecessors]
            new_in = problem.apply_meet(meet_inputs)
            new_out = problem.transfer(block, new_in)
            in_facts[block.name] = new_in
            if new_out != out_facts[block.name]:
                out_facts[block.name] = new_out
                for successor in block.successors():
                    if successor not in worklist:
                        worklist.append(successor)
    else:
        worklist = deque(reversed(blocks))
        exit_names = {b.name for b in blocks if not b.successor_names()}
        while worklist:
            block = worklist.popleft()
            successors = block.successors()
            if block.name in exit_names:
                meet_inputs = [problem.boundary] + [in_facts[s.name] for s in successors]
            else:
                meet_inputs = [in_facts[s.name] for s in successors]
            new_out = problem.apply_meet(meet_inputs)
            new_in = problem.transfer(block, new_out)
            out_facts[block.name] = new_out
            if new_in != in_facts[block.name]:
                in_facts[block.name] = new_in
                for predecessor in block.predecessors():
                    if predecessor not in worklist:
                        worklist.append(predecessor)

    return {
        name: {"in": in_facts[name], "out": out_facts[name]}
        for name in (b.name for b in blocks)
    }
