"""Static analyses feeding the parallelization framework.

Section 2.1 of the paper lists what the compiler must know before it can
extract threads: dependences must not be over-estimated.  This package
provides:

- :mod:`repro.analysis.dominators` — dominator and post-dominator trees
  (Cooper–Harvey–Kennedy);
- :mod:`repro.analysis.dataflow` — a generic worklist dataflow engine;
- :mod:`repro.analysis.liveness`, :mod:`repro.analysis.reaching` — classic
  bit-vector problems on top of the engine;
- :mod:`repro.analysis.controldep` — control dependence via post-dominance
  frontiers;
- :mod:`repro.analysis.alias` — Andersen-style points-to plus a may-alias
  oracle over abstract memory objects (the paper's "aggressive alias
  analysis [5]");
- :mod:`repro.analysis.regdep` / :mod:`repro.analysis.memdep` — register and
  memory dependence construction;
- :mod:`repro.analysis.value_range` — constant/interval propagation
  ("variable value analysis [22]");
- :mod:`repro.analysis.callgraph` — whole-program call graph with side-effect
  summaries;
- :mod:`repro.analysis.loopcarried` — intra- vs. loop-carried classification
  of dependences for a chosen loop.
"""

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.callgraph import CallGraph, compute_side_effects
from repro.analysis.controldep import ControlDependence
from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.dominators import DominatorTree, PostDominatorTree
from repro.analysis.liveness import Liveness
from repro.analysis.loopcarried import DependenceKind, classify_loop_dependences
from repro.analysis.memdep import MemoryDependence, MemoryDependenceAnalysis
from repro.analysis.reaching import ReachingDefinitions
from repro.analysis.regdep import RegisterDependence, register_dependences
from repro.analysis.value_range import ValueRange, ValueRangeAnalysis

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "CallGraph",
    "ControlDependence",
    "DataflowProblem",
    "DependenceKind",
    "DominatorTree",
    "Liveness",
    "MemoryDependence",
    "MemoryDependenceAnalysis",
    "PostDominatorTree",
    "ReachingDefinitions",
    "RegisterDependence",
    "ValueRange",
    "ValueRangeAnalysis",
    "classify_loop_dependences",
    "compute_side_effects",
    "register_dependences",
    "solve_dataflow",
]
