"""Classify all dependences of a loop as intra-iteration vs. loop-carried.

This is the single query the DSWP partitioner actually needs: an SCC of the
PDG may be replicated into a parallel stage iff it participates in *no*
loop-carried dependence (Section 2.1: "DSWP must replicate stages that
contain no loop-carried dependences").
"""

from __future__ import annotations

from enum import Enum
from typing import List, NamedTuple, Optional

from repro.analysis.alias import AliasAnalysis
from repro.analysis.memdep import MemoryDependenceAnalysis
from repro.analysis.regdep import register_dependences
from repro.ir.instructions import Instruction
from repro.ir.loops import Loop
from repro.ir.program import Program


class DependenceKind(Enum):
    """The three dependence families the PDG carries."""

    REGISTER = "register"
    MEMORY = "memory"
    CONTROL = "control"


class LoopDependence(NamedTuple):
    source: Instruction
    target: Instruction
    kind: DependenceKind
    detail: str           # "raw"/"war"/"waw" for memory, register name, etc.
    loop_carried: bool


def classify_loop_dependences(
    program: Program,
    loop: Loop,
    alias: Optional[AliasAnalysis] = None,
) -> List[LoopDependence]:
    """Register + memory dependences of ``loop``, flagged by carriedness."""
    result: List[LoopDependence] = []

    for dep in register_dependences(loop.function, loop):
        result.append(
            LoopDependence(
                dep.source, dep.target, DependenceKind.REGISTER,
                dep.register.name, dep.loop_carried,
            )
        )

    memory = MemoryDependenceAnalysis(program, loop.function, loop, alias=alias)
    for dep in memory.dependences:
        result.append(
            LoopDependence(
                dep.source, dep.target, DependenceKind.MEMORY,
                dep.kind, dep.loop_carried,
            )
        )
    return result
