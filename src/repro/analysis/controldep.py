"""Control dependence via post-dominance.

Block B is control dependent on branch block A iff A has successors S1, S2
where B post-dominates S1 but does not post-dominate A (Ferrante–Ottenstein–
Warren).  The PDG builder attaches control edges from each branch to every
instruction in its dependent blocks.

Y-branches weaken this relation: because the *true* path is always legal
(Section 2.3.1), instructions reachable only when the Y-branch is taken are
*not* control dependent on the Y-branch's computed condition — the compiler
may fire the branch whenever it likes.  :meth:`ControlDependence.edges`
therefore reports Y-branch-sourced dependences as *breakable*.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set

from repro.analysis.dominators import PostDominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, YBranch


class ControlEdge(NamedTuple):
    """A control dependence: ``dependent_block`` runs only if ``branch`` goes a given way."""

    branch_block: str
    dependent_block: str
    breakable: bool  # True when the source branch is a Y-branch


class ControlDependence:
    """Control dependence sets for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._post = PostDominatorTree(function)
        self._dependents: Dict[str, Set[str]] = {b.name: set() for b in function.blocks}
        self._compute()

    def _compute(self) -> None:
        for block in self.function.blocks:
            successors = block.successor_names()
            if len(successors) < 2:
                continue
            for successor in successors:
                # Walk up the post-dominator tree from the successor until we
                # reach the branch block's immediate post-dominator; every
                # block on the way is control dependent on the branch.
                runner = successor
                stop = self._post.immediate_post_dominator(block.name)
                while runner is not None and runner != stop:
                    # A loop header is control dependent on its own branch
                    # (runner may equal block.name), per Ferrante et al.
                    self._dependents[block.name].add(runner)
                    runner = self._post.immediate_post_dominator(runner)

    def dependents_of(self, branch_block: str) -> Set[str]:
        """Blocks whose execution is decided by ``branch_block``'s terminator."""
        return set(self._dependents.get(branch_block, set()))

    def controlling_branches(self, block_name: str) -> Set[str]:
        return {
            branch
            for branch, dependents in self._dependents.items()
            if block_name in dependents
        }

    def edges(self) -> List[ControlEdge]:
        """All control dependences, flagging Y-branch sources as breakable."""
        result: List[ControlEdge] = []
        for branch_name, dependents in self._dependents.items():
            terminator = self.function.block(branch_name).terminator
            breakable = isinstance(terminator, YBranch)
            for dependent in sorted(dependents):
                result.append(ControlEdge(branch_name, dependent, breakable))
        return result

    def is_control_equivalent(self, a: str, b: str) -> bool:
        """True when blocks a and b execute under identical branch outcomes."""
        return self.controlling_branches(a) == self.controlling_branches(b)
