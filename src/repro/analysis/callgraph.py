"""Whole-program call graph with transitive side-effect summaries.

The region former and the memory dependence analysis need to know, for an
opaque call, which abstract memory objects the callee (transitively) may read
or write.  :func:`compute_side_effects` propagates load/store object sets
bottom-up over the call graph's SCC condensation so recursion converges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.ir.instructions import Call
from repro.ir.program import Program
from repro.ir.values import MemoryObject


class CallGraph:
    """callers/callees by function name, plus SCC condensation."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.callees: Dict[str, Set[str]] = defaultdict(set)
        self.callers: Dict[str, Set[str]] = defaultdict(set)
        for function in program.functions:
            self.callees.setdefault(function.name, set())
            if function.is_external:
                continue
            for call in function.call_sites():
                targets = [call.callee] if call.callee else list(call.may_call)
                for target in targets:
                    if target is None:
                        continue
                    self.callees[function.name].add(target)
                    self.callers[target].add(function.name)

    def is_recursive(self, name: str) -> bool:
        """Direct or mutual recursion through the call graph."""
        for scc in self.sccs():
            if name in scc:
                return len(scc) > 1 or name in self.callees[name]
        return False

    def sccs(self) -> List[Set[str]]:
        """Tarjan SCCs in reverse topological order (callees first)."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: List[Set[str]] = []

        def strongconnect(node: str) -> None:
            work: List[Tuple[str, int]] = [(node, 0)]
            while work:
                current, child_index = work[-1]
                if child_index == 0:
                    index[current] = index_counter[0]
                    lowlink[current] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                children = sorted(self.callees.get(current, set()))
                for offset in range(child_index, len(children)):
                    child = children[offset]
                    if child not in self.callees:
                        continue
                    if child not in index:
                        work[-1] = (current, offset + 1)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], index[child])
                if recurse:
                    continue
                if lowlink[current] == index[current]:
                    scc: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member == current:
                            break
                    result.append(scc)
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])

        for name in sorted(self.callees):
            if name not in index:
                strongconnect(name)
        return result

    def reachable_from(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, set()))
        return seen


def compute_side_effects(program: Program) -> Dict[str, Tuple[Set[MemoryObject], Set[MemoryObject]]]:
    """Per-function (reads, writes) object sets, closed over the call graph.

    Commutative functions report *empty* externally visible effects on their
    internal state objects — the annotation's semantics ("outside of the
    function, the outputs of the function call are only dependent upon its
    inputs", Section 2.3.2); effects on objects not private to the group are
    still reported.  The summaries are then copied onto every resolved call
    site's ``reads``/``writes`` lists.
    """
    graph = CallGraph(program)
    summaries: Dict[str, Tuple[Set[MemoryObject], Set[MemoryObject]]] = {}

    # Objects touched only inside a Commutative group are that group's
    # private internal state.
    group_private = _commutative_private_objects(program)

    for scc in graph.sccs():  # callees-first order
        # Iterate within the SCC to a fixed point (handles recursion).
        changed = True
        for name in scc:
            summaries.setdefault(name, (set(), set()))
        while changed:
            changed = False
            for name in scc:
                if not program.has_function(name):
                    continue
                function = program.function(name)
                if function.is_external:
                    continue
                reads, writes = summaries[name]
                before = (len(reads), len(writes))
                for instruction in function.instructions():
                    if instruction.reads_memory:
                        reads.update(instruction.memory_objects())
                    if instruction.writes_memory:
                        writes.update(instruction.memory_objects())
                    if isinstance(instruction, Call):
                        targets = [instruction.callee] if instruction.callee else list(instruction.may_call)
                        for target in targets:
                            if target in summaries:
                                callee_reads, callee_writes = summaries[target]
                                reads.update(callee_reads)
                                writes.update(callee_writes)
                if (len(reads), len(writes)) != before:
                    changed = True

    # Apply Commutative masking.
    for function in program.functions:
        group = function.commutative_group
        if group is None or function.name not in summaries:
            continue
        private = group_private.get(group, set())
        reads, writes = summaries[function.name]
        summaries[function.name] = (
            {o for o in reads if o.id not in private},
            {o for o in writes if o.id not in private},
        )

    # Annotate call sites.
    for function in program.functions:
        if function.is_external:
            continue
        for call in function.call_sites():
            if call.callee and call.callee in summaries:
                reads, writes = summaries[call.callee]
                call.reads = sorted(reads, key=lambda o: o.id)
                call.writes = sorted(writes, key=lambda o: o.id)
    return summaries


def _commutative_private_objects(program: Program) -> Dict[str, Set[int]]:
    """Object ids touched exclusively by members of each Commutative group."""
    touched_by_group: Dict[str, Set[int]] = defaultdict(set)
    touched_outside: Set[int] = set()
    for function in program.functions:
        if function.is_external:
            continue
        group = function.commutative_group
        for instruction in function.instructions():
            for obj in instruction.memory_objects():
                if group is not None:
                    touched_by_group[group].add(obj.id)
                else:
                    touched_outside.add(obj.id)
    return {
        group: {oid for oid in objects if oid not in touched_outside}
        for group, objects in touched_by_group.items()
    }
