"""Value profiling: per-site value predictability.

This is what lets the framework discover speculation candidates like
perlbmk's ``PL_stack_sp``: "value profiling reveals that the PL_stack_sp and
PL_temp_ixs variables will often have the same value every time a NEXTSTATE
operation finishes" (Section 4.1.3).  A site is a *good value-speculation
candidate* when one value dominates its observations.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.profiling.tracer import TraceResult


@dataclass
class SiteSummary:
    site: str
    observations: int
    top_value: Hashable
    top_fraction: float
    distinct_values: int

    @property
    def predictable(self) -> bool:
        return self.top_fraction >= 0.95


class ValueProfile:
    """Summaries over every value site the trace recorded."""

    def __init__(self, trace: TraceResult) -> None:
        self.trace = trace
        self._by_site: Dict[str, Counter] = defaultdict(Counter)
        for event in trace.values:
            self._by_site[event.site][event.value] += 1

    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def summary(self, site: str) -> SiteSummary:
        counter = self._by_site.get(site)
        if not counter:
            raise KeyError(f"no observations for value site {site!r}")
        total = sum(counter.values())
        value, count = counter.most_common(1)[0]
        return SiteSummary(
            site=site,
            observations=total,
            top_value=value,
            top_fraction=count / total,
            distinct_values=len(counter),
        )

    def predictability(self, site: str) -> float:
        """Fraction of observations explained by the most common value."""
        try:
            return self.summary(site).top_fraction
        except KeyError:
            return 0.0

    def predicted_value(self, site: str) -> Optional[Hashable]:
        counter = self._by_site.get(site)
        if not counter:
            return None
        return counter.most_common(1)[0][0]

    def speculation_candidates(self, threshold: float = 0.95) -> List[SiteSummary]:
        """Sites where one value covers at least ``threshold`` of observations."""
        candidates = []
        for site in self.sites():
            summary = self.summary(site)
            if summary.top_fraction >= threshold:
                candidates.append(summary)
        return candidates
