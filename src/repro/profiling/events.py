"""Event records produced by the tracer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Optional, Tuple

#: A memory location at profiling granularity: (object name, key).  The key
#: is whatever the workload chooses — an array index, a dictionary key, a
#: node id — so one workload can be profiled coarsely and another finely.
Location = Tuple[str, Hashable]


class AccessKind(Enum):
    """Memory access direction."""

    LOAD = "load"
    STORE = "store"


@dataclass
class TaskRecord:
    """One dynamic task: an instance of a statically marked phase region.

    The paper's terminology (Section 3.1): "*phases* refer to statically
    selected regions and *tasks* refer [to] dynamic instances of a phase."

    Attributes:
        index: global sequence number in sequential execution order.
        phase: the phase letter, ``"A"``, ``"B"``, or ``"C"``.
        iteration: the loop iteration this task belongs to.
        cost: accumulated abstract work units (the pfmon-time stand-in).
    """

    index: int
    phase: str
    iteration: int
    cost: int = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.phase, self.iteration)

    def __repr__(self) -> str:
        return f"TaskRecord({self.phase}{self.iteration}, cost={self.cost})"


@dataclass
class AccessEvent:
    """One dynamic memory access, attributed to the task that made it.

    ``commutative_group`` is non-None when the access happened inside a
    function carrying the *Commutative* annotation: such accesses never
    create cross-task dependences within the same group (Section 2.3.2).
    """

    task_index: int
    kind: AccessKind
    location: Location
    commutative_group: Optional[str] = None
    silent: bool = False  # store that wrote back the existing value


@dataclass
class ValueEvent:
    """One observation of a value at a named profiling site."""

    task_index: int
    site: str
    value: Hashable


@dataclass
class BranchEvent:
    """One dynamic outcome of a named branch site."""

    task_index: int
    site: str
    taken: bool
    is_ybranch: bool = False
