"""Condense an access log into dynamic task-to-task dependences.

This is the paper's "memory profiling pass run prior to simulation"
(Section 3.1): the simulator is informed of the dynamic dependences that
actually occurred, which models serialization due to misspeculation without
charging an extra misspeculation penalty.

Rules:

- RAW: a load sees a dependence from the most recent store to its location.
- WAW: a store depends on the most recent prior store to its location.
- WAR: a store depends on loads of the location since the last store.
- Accesses within the same *Commutative* group never depend on each other —
  the annotation declares all orders legal (Section 2.3.2).  They are instead
  collected as *atomic sections* so the runtime can enforce that group
  members execute atomically with respect to one another.
- Silent stores do not create RAW/WAW sources (Section 2.1, [15]): a reader
  after a silent store reads the same value the previous store produced, so
  the dependence is charged to that earlier store.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.profiling.events import AccessEvent, AccessKind, Location, TaskRecord
from repro.profiling.tracer import TraceResult


@dataclass(frozen=True)
class DynamicDependence:
    """A dependence observed between two dynamic tasks.

    ``location`` names the shared state responsible; ``kind`` is
    RAW/WAR/WAW.  Self-dependences (same task) are never reported.
    """

    source_index: int
    target_index: int
    kind: str
    location: Location

    def cross_iteration(self, tasks: List[TaskRecord]) -> bool:
        return tasks[self.source_index].iteration != tasks[self.target_index].iteration


class MemoryProfile:
    """Dynamic dependences plus Commutative atomic-section bookkeeping."""

    def __init__(self, trace: TraceResult, honor_commutative: bool = True) -> None:
        """``honor_commutative=False`` treats Commutative-tagged accesses as
        ordinary accesses — the ablation that shows what the annotation buys
        (the paper's gcc/crafty/twolf case studies describe exactly this
        failure mode: alias speculation alone drowns in misspeculation)."""
        self.trace = trace
        self.honor_commutative = honor_commutative
        self.dependences: List[DynamicDependence] = []
        #: group name -> ordered list of task indices that entered the group;
        #: the runtime must serialize these pairwise (atomicity), though in
        #: any order.
        self.commutative_sections: Dict[str, List[int]] = defaultdict(list)
        #: location -> task indices that touched it (first-touch order,
        #: commutative accesses excluded).  Synchronization chains all
        #: accessors of a location in this order.
        self.location_accessors: Dict[Location, List[int]] = defaultdict(list)
        self._build()

    def _build(self) -> None:
        last_store: Dict[Location, int] = {}
        last_effective_store: Dict[Location, int] = {}
        loads_since_store: Dict[Location, List[int]] = defaultdict(list)
        seen_deps: Set[Tuple[int, int, str, Location]] = set()
        seen_sections: Dict[str, Set[int]] = defaultdict(set)
        seen_accessors: Dict[Location, Set[int]] = defaultdict(set)

        def emit(source: int, target: int, kind: str, location: Location) -> None:
            if source == target:
                return
            key = (source, target, kind, location)
            if key in seen_deps:
                return
            seen_deps.add(key)
            self.dependences.append(DynamicDependence(source, target, kind, location))

        for event in self.trace.accesses:
            if event.commutative_group is not None and self.honor_commutative:
                group = event.commutative_group
                if event.task_index not in seen_sections[group]:
                    seen_sections[group].add(event.task_index)
                    self.commutative_sections[group].append(event.task_index)
                continue

            location = event.location
            if event.task_index not in seen_accessors[location]:
                seen_accessors[location].add(event.task_index)
                self.location_accessors[location].append(event.task_index)
            if event.kind is AccessKind.LOAD:
                source = last_effective_store.get(location)
                if source is not None:
                    emit(source, event.task_index, "raw", location)
                readers = loads_since_store[location]
                if not readers or readers[-1] != event.task_index:
                    readers.append(event.task_index)
            else:
                prior = last_store.get(location)
                if prior is not None:
                    emit(prior, event.task_index, "waw", location)
                for reader in loads_since_store[location]:
                    emit(reader, event.task_index, "war", location)
                loads_since_store[location] = []
                last_store[location] = event.task_index
                if not event.silent:
                    last_effective_store[location] = event.task_index

    # -- queries --------------------------------------------------------------------

    def cross_iteration_dependences(self) -> List[DynamicDependence]:
        tasks = self.trace.tasks
        return [d for d in self.dependences if d.cross_iteration(tasks)]

    def cross_iteration_raw(self) -> List[DynamicDependence]:
        return [d for d in self.cross_iteration_dependences() if d.kind == "raw"]

    def dependences_between_phases(self, source_phase: str, target_phase: str) -> List[DynamicDependence]:
        tasks = self.trace.tasks
        return [
            d for d in self.dependences
            if tasks[d.source_index].phase == source_phase
            and tasks[d.target_index].phase == target_phase
        ]

    def locations(self) -> Set[Location]:
        return {d.location for d in self.dependences}

    def dependence_count_by_location(self) -> Dict[Location, int]:
        counts: Dict[Location, int] = defaultdict(int)
        for dependence in self.dependences:
            counts[dependence.location] += 1
        return dict(counts)
