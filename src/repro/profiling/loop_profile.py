"""Loop profiling: iteration counts, task-cost distributions, imbalance.

The execution-plan builder uses these statistics to size the parallel stage:
crafty's ~2x ceiling at 32 threads, for example, traces directly to "the
amount of time it takes to search a particular move is highly variable"
(Section 4.3.1) — a property this profile exposes as the cost coefficient of
variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Dict, List

from repro.profiling.tracer import TraceResult


@dataclass
class PhaseStats:
    phase: str
    task_count: int
    total_cost: int
    min_cost: int
    max_cost: int
    mean_cost: float
    stdev_cost: float

    @property
    def coefficient_of_variation(self) -> float:
        return self.stdev_cost / self.mean_cost if self.mean_cost else 0.0


class LoopProfile:
    """Cost statistics per phase for one traced loop."""

    def __init__(self, trace: TraceResult) -> None:
        self.trace = trace

    @property
    def iteration_count(self) -> int:
        return self.trace.iteration_count

    def phase_stats(self, phase: str) -> PhaseStats:
        costs = [task.cost for task in self.trace.tasks_in_phase(phase)]
        if not costs:
            return PhaseStats(phase, 0, 0, 0, 0, 0.0, 0.0)
        mean = sum(costs) / len(costs)
        variance = sum((c - mean) ** 2 for c in costs) / len(costs)
        return PhaseStats(
            phase=phase,
            task_count=len(costs),
            total_cost=sum(costs),
            min_cost=min(costs),
            max_cost=max(costs),
            mean_cost=mean,
            stdev_cost=sqrt(variance),
        )

    def all_phases(self) -> Dict[str, PhaseStats]:
        return {phase: self.phase_stats(phase) for phase in ("A", "B", "C")}

    def parallel_fraction(self) -> float:
        """Fraction of total cost in the replicable phase B (Amdahl input)."""
        total = self.trace.total_cost
        if total == 0:
            return 0.0
        return self.phase_stats("B").total_cost / total

    def pipeline_bound(self) -> float:
        """Upper bound on pipeline speedup: total / max sequential phase.

        Phases A and C execute serially on dedicated cores, so no plan can
        finish faster than the heavier of the two (ignoring B imbalance).
        """
        total = self.trace.total_cost
        if total == 0:
            return 1.0
        stats = self.all_phases()
        serial_bottleneck = max(stats["A"].total_cost, stats["C"].total_cost)
        longest_b = stats["B"].max_cost
        bound_denominator = max(serial_bottleneck, longest_b, 1)
        return total / bound_denominator
