"""Branch profiling: bias of each branch site, Y-branches flagged.

Control speculation (Section 2.1) breaks control dependences on branches
that nearly always go one way — e.g. crafty's ``next_time_check`` branch
"must be speculated not taken" (Section 4.3.1).  A Y-branch's bias is
advisory only: its true path is always legal, so the reported probability
is the *recommended* firing rate rather than a correctness constraint.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.profiling.tracer import TraceResult


@dataclass
class BranchSummary:
    site: str
    executions: int
    taken: int
    is_ybranch: bool

    @property
    def taken_fraction(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """How one-sided the branch is: max(taken, not-taken) fraction."""
        fraction = self.taken_fraction
        return max(fraction, 1.0 - fraction)


class BranchProfile:
    """Execution counts and bias per branch site."""

    def __init__(self, trace: TraceResult) -> None:
        self.trace = trace
        self._executions: Dict[str, int] = defaultdict(int)
        self._taken: Dict[str, int] = defaultdict(int)
        self._ybranch: Dict[str, bool] = defaultdict(bool)
        for event in trace.branches:
            self._executions[event.site] += 1
            if event.taken:
                self._taken[event.site] += 1
            if event.is_ybranch:
                self._ybranch[event.site] = True

    def sites(self) -> List[str]:
        return sorted(self._executions)

    def summary(self, site: str) -> BranchSummary:
        if site not in self._executions:
            raise KeyError(f"no observations for branch site {site!r}")
        return BranchSummary(
            site=site,
            executions=self._executions[site],
            taken=self._taken[site],
            is_ybranch=self._ybranch[site],
        )

    def speculation_candidates(self, threshold: float = 0.99) -> List[BranchSummary]:
        """Branches biased enough to control-speculate."""
        return [
            self.summary(site)
            for site in self.sites()
            if self.summary(site).bias >= threshold
        ]
