"""Profiling: the reproduction's stand-in for native measurement.

Section 3.1 of the paper measures dynamic task times with Itanium hardware
performance counters (pfmon) and obtains "the dynamic dependences that
actually occurred ... from a memory profiling pass run prior to simulation".
This package provides both halves in a machine-independent way:

- :mod:`repro.profiling.tracer` — a :class:`Tracer` the workload analogs run
  under.  Workloads declare tasks (phase + iteration), accumulate abstract
  work units (deterministic cost, replacing cycle counts), and record every
  shared-memory access at a chosen granularity;
- :mod:`repro.profiling.memory_profile` — turns the access log into dynamic
  task-to-task dependences (RAW/WAR/WAW), with *Commutative* accesses
  excluded by group;
- :mod:`repro.profiling.value_profile` — per-site value predictability, used
  to choose value speculation (Section 4.1.3's ``PL_stack_sp`` discovery);
- :mod:`repro.profiling.branch_profile` — branch bias, used to choose control
  speculation;
- :mod:`repro.profiling.loop_profile` — iteration counts and task-cost
  distributions.
"""

from repro.profiling.branch_profile import BranchProfile
from repro.profiling.events import AccessEvent, AccessKind, TaskRecord
from repro.profiling.loop_profile import LoopProfile
from repro.profiling.memory_profile import DynamicDependence, MemoryProfile
from repro.profiling.tracer import TraceResult, Tracer
from repro.profiling.value_profile import ValueProfile

__all__ = [
    "AccessEvent",
    "AccessKind",
    "BranchProfile",
    "DynamicDependence",
    "LoopProfile",
    "MemoryProfile",
    "TaskRecord",
    "TraceResult",
    "Tracer",
    "ValueProfile",
]
