"""The tracer the workload analogs run under.

A workload's sequential execution is decomposed into *tasks* — dynamic
instances of statically marked phase regions (Section 3.1).  The workload
brackets each region with :meth:`Tracer.task`, accumulates deterministic
abstract work units with :meth:`Tracer.work`, and reports shared-state
accesses with :meth:`Tracer.load` / :meth:`Tracer.store`.  The result is a
:class:`TraceResult`: the task list plus raw event logs that the profile
classes condense.

Example::

    tracer = Tracer()
    for iteration, block in enumerate(blocks):
        with tracer.task("A", iteration):
            data = read_block(block)
            tracer.work(len(data))
        with tracer.task("B", iteration):
            out = compress(data)
            tracer.work(10 * len(data))
        with tracer.task("C", iteration):
            write(out)
            tracer.work(len(out))
    trace = tracer.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.profiling.events import (
    AccessEvent,
    AccessKind,
    BranchEvent,
    Location,
    TaskRecord,
    ValueEvent,
)


@dataclass
class TraceResult:
    """Everything one sequential run produced.

    ``section_costs`` maps ``(task index, commutative group)`` to the work
    units spent inside that group's functions by that task — the duration of
    the atomic section the runtime must serialize against other group
    members (Section 2.3.2: Commutative functions "execute atomically").
    """

    tasks: List[TaskRecord] = field(default_factory=list)
    accesses: List[AccessEvent] = field(default_factory=list)
    values: List[ValueEvent] = field(default_factory=list)
    branches: List[BranchEvent] = field(default_factory=list)
    section_costs: Dict[Tuple[int, str], int] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        """Single-threaded execution time in abstract work units."""
        return sum(task.cost for task in self.tasks)

    @property
    def iteration_count(self) -> int:
        if not self.tasks:
            return 0
        return max(task.iteration for task in self.tasks) + 1

    def tasks_in_phase(self, phase: str) -> List[TaskRecord]:
        return [task for task in self.tasks if task.phase == phase]

    def task_by_key(self, phase: str, iteration: int) -> TaskRecord:
        for task in self.tasks:
            if task.phase == phase and task.iteration == iteration:
                return task
        raise KeyError(f"no task {phase}{iteration}")


class Tracer:
    """Records tasks, work, memory accesses and profile events.

    The tracer is strictly sequential: at most one task is open at a time
    (tasks are regions of *one* loop iteration and the profiled run is the
    single-threaded original).  Accesses outside any task are attributed to
    the most recently closed task, matching the paper's treatment of
    non-region code (it rides with the preceding phase).
    """

    def __init__(self) -> None:
        self._tasks: List[TaskRecord] = []
        self._accesses: List[AccessEvent] = []
        self._values: List[ValueEvent] = []
        self._branches: List[BranchEvent] = []
        self._current: Optional[TaskRecord] = None
        self._commutative_stack: List[str] = []
        self._section_costs: Dict[Tuple[int, str], int] = {}
        self._last_written: Dict[Location, Hashable] = {}
        self._finished = False

    # -- task bracketing ---------------------------------------------------------

    @contextmanager
    def task(self, phase: str, iteration: int):
        """Open a task for ``phase`` within ``iteration``; closes on exit."""
        if self._finished:
            raise RuntimeError("tracer already finished")
        if phase not in ("A", "B", "C"):
            raise ValueError(f"phase must be A, B or C, got {phase!r}")
        if self._current is not None:
            raise RuntimeError(
                f"task {self._current!r} still open; tasks cannot nest"
            )
        record = TaskRecord(index=len(self._tasks), phase=phase, iteration=iteration)
        self._tasks.append(record)
        self._current = record
        try:
            yield record
        finally:
            self._current = None

    def _attribution_index(self) -> int:
        if self._current is not None:
            return self._current.index
        if self._tasks:
            return self._tasks[-1].index
        raise RuntimeError("event recorded before any task was opened")

    # -- cost ---------------------------------------------------------------------

    def work(self, units: int = 1) -> None:
        """Charge ``units`` abstract work units to the open task."""
        if units < 0:
            raise ValueError("work units cannot be negative")
        if self._current is None:
            raise RuntimeError("work() outside any task")
        self._current.cost += units
        if self._commutative_stack:
            key = (self._current.index, self._commutative_stack[-1])
            self._section_costs[key] = self._section_costs.get(key, 0) + units

    # -- memory accesses -------------------------------------------------------------

    def load(self, obj: str, key: Hashable = None) -> None:
        self._accesses.append(
            AccessEvent(
                task_index=self._attribution_index(),
                kind=AccessKind.LOAD,
                location=(obj, key),
                commutative_group=self._active_group(),
            )
        )

    def store(self, obj: str, key: Hashable = None, value: Hashable = None) -> None:
        """Record a store; when ``value`` is given, silent stores are detected.

        A store is *silent* when it writes back the value already present
        (Lepak & Lipasti); the speculation layer exempts silent stores from
        alias-misspeculation accounting (Section 2.1).
        """
        location: Location = (obj, key)
        silent = False
        if value is not None:
            silent = self._last_written.get(location) == value
            self._last_written[location] = value
        self._accesses.append(
            AccessEvent(
                task_index=self._attribution_index(),
                kind=AccessKind.STORE,
                location=location,
                commutative_group=self._active_group(),
                silent=silent,
            )
        )

    # -- Commutative context ------------------------------------------------------------

    @contextmanager
    def commutative(self, group: str):
        """Accesses inside this context belong to Commutative group ``group``."""
        self._commutative_stack.append(group)
        try:
            yield
        finally:
            self._commutative_stack.pop()

    def _active_group(self) -> Optional[str]:
        return self._commutative_stack[-1] if self._commutative_stack else None

    # -- value / branch sites --------------------------------------------------------------

    def value(self, site: str, value: Hashable) -> None:
        """Record the observed ``value`` at profiling site ``site``."""
        self._values.append(
            ValueEvent(self._attribution_index(), site, value)
        )

    def branch(self, site: str, taken: bool, is_ybranch: bool = False) -> None:
        self._branches.append(
            BranchEvent(self._attribution_index(), site, taken, is_ybranch)
        )

    # -- completion ----------------------------------------------------------------------

    def finish(self) -> TraceResult:
        if self._current is not None:
            raise RuntimeError(f"task {self._current!r} still open at finish()")
        self._finished = True
        return TraceResult(
            tasks=self._tasks,
            accesses=self._accesses,
            values=self._values,
            branches=self._branches,
            section_costs=self._section_costs,
        )
