"""Ambient tracer context.

Workload code and the annotation decorators need to reach the active
:class:`~repro.profiling.tracer.Tracer` without threading it through every
call (a Commutative-annotated allocator may sit many frames below the loop).
A context variable keeps this re-entrant and safe under nested activation.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.profiling.tracer import Tracer

_active: ContextVar[Optional[Tracer]] = ContextVar("repro_active_tracer", default=None)


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the ambient tracer within the ``with`` body."""
    token = _active.set(tracer)
    try:
        yield tracer
    finally:
        _active.reset(token)


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` outside any activation."""
    return _active.get()
