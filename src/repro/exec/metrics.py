"""Runtime observability: what the engine actually did, measured.

The simulator reports *predicted* makespans in abstract work units; the
engine reports *measured* wall-clock seconds plus every robustness event it
weathered.  :class:`EngineMetrics` is the single record of one run —
exportable as JSON (for dashboards and the benchmark harness) and formatted
for the CLI.  ``measured_speedup`` against a timed sequential run feeds
:func:`repro.core.report.format_calibration_table`, closing the
simulated-vs-measured loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.hist import LatencyHistogram, format_seconds, summarize


def _round_floats(summary: dict, digits: int = 6) -> dict:
    return {
        key: round(value, digits) if isinstance(value, float) else value
        for key, value in summary.items()
    }


@dataclass
class EngineMetrics:
    """Counters and timings for one :class:`~repro.exec.engine.ExecutionEngine` run."""

    workers: int = 0
    capacity: int = 0
    iterations: int = 0
    #: effective transport batch size (1 = classic unbatched wire format)
    batch_size: int = 1
    #: channel wire backend the run used: "pipe", "shm", or "thread"
    transport: str = "pipe"

    # -- wall-clock observability ------------------------------------------------
    wall_seconds: float = 0.0
    #: per-stage busy time summed over tasks (A: produce, B: worker compute,
    #: C: commit callbacks) — the measured analog of the simulator's
    #: per-phase costs
    stage_seconds: Dict[str, float] = field(
        default_factory=lambda: {"A": 0.0, "B": 0.0, "C": 0.0}
    )
    sequential_seconds: Optional[float] = None

    # -- pipeline progress -------------------------------------------------------
    commits: int = 0
    in_order_commits: int = 0
    out_of_order_completions: int = 0
    duplicates_dropped: int = 0
    worker_iterations: Dict[int, int] = field(default_factory=dict)

    # -- speculation -------------------------------------------------------------
    conflicts: int = 0
    serial_reexecutions: int = 0

    # -- robustness --------------------------------------------------------------
    worker_crashes: int = 0
    worker_timeouts: int = 0
    soft_faults: int = 0
    respawns: int = 0
    retries: int = 0
    producer_crashed: bool = False
    degraded_to_sequential: bool = False
    #: the run was cancelled mid-flight (repro.service job cancellation);
    #: the committed prefix is valid but the output is partial
    cancelled: bool = False

    # -- resilience: checkpoint/resume -------------------------------------------
    checkpoints_taken: int = 0
    #: first iteration executed by this run (non-zero when resumed)
    resumed_from: Optional[int] = None

    # -- resilience: adaptive speculation throttling -----------------------------
    throttle_shrinks: int = 0
    throttle_grows: int = 0
    #: smallest in-flight window the controller reached (0: throttle off)
    min_window: int = 0
    #: window in force when the run ended (0: throttle off)
    final_window: int = 0

    # -- channels ----------------------------------------------------------------
    channel_stats: Dict[str, dict] = field(default_factory=dict)

    # -- live telemetry ----------------------------------------------------------
    #: The live watchdog's end-of-run summary (health, stall/saturation/
    #: storm counts, recent events) when the run was observed live
    #: (``LiveConfig`` on the engine); ``None`` otherwise.
    watchdog: Optional[dict] = None

    # -- bottleneck analysis -----------------------------------------------------
    #: The analyzer's verdict for this run (``repro.obs.analyze``): top
    #: blame category, blame fractions, and ranked what-if projections.
    #: Trace-based when the run was traced; otherwise the coarse
    #: metrics-only estimate the engine attaches at the end of ``run()``.
    bottleneck: Optional[dict] = None

    # -- latency distributions ---------------------------------------------------
    #: Per-event latency histograms the committer populates live (no
    #: tracing required): ``task_a``/``task_b``/``task_c`` execution time
    #: per iteration, ``commit_lag`` (claim arrival -> commit), and
    #: ``queue_wait`` (the committer's blocking done-channel reads).
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def record_latency(self, series: str, seconds: float) -> None:
        histogram = self.latency.get(series)
        if histogram is None:
            histogram = self.latency[series] = LatencyHistogram()
        histogram.add(seconds)

    @property
    def measured_speedup(self) -> Optional[float]:
        """Sequential wall time over engine wall time, when both were timed."""
        if not self.sequential_seconds or not self.wall_seconds:
            return None
        return self.sequential_seconds / self.wall_seconds

    @property
    def misspeculation_rate(self) -> float:
        return self.conflicts / self.commits if self.commits else 0.0

    @property
    def comm_overhead(self) -> Dict[str, dict]:
        """Per-channel communication cost of the batched transport (a view
        over ``channel_stats`` for the CLI summary; the JSON export carries
        the stats once, canonically, under ``"channels"``)."""
        overhead = {}
        for name, stats in self.channel_stats.items():
            overhead[name] = {
                "flushes": stats.get("flushes", 0),
                "mean_frame_items": stats.get("mean_frame_items", 0.0),
                "serialize_seconds": stats.get("serialize_seconds", 0.0),
                "deserialize_seconds": stats.get("deserialize_seconds", 0.0),
                "transport": stats.get("transport", "pipe"),
            }
        return overhead

    def to_json(self) -> dict:
        data = {
            "workers": self.workers,
            "capacity": self.capacity,
            "iterations": self.iterations,
            "batch_size": self.batch_size,
            "transport": self.transport,
            "wall_seconds": round(self.wall_seconds, 6),
            "sequential_seconds": (
                round(self.sequential_seconds, 6)
                if self.sequential_seconds is not None
                else None
            ),
            "measured_speedup": (
                round(self.measured_speedup, 4)
                if self.measured_speedup is not None
                else None
            ),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            },
            "commits": self.commits,
            "in_order_commits": self.in_order_commits,
            "out_of_order_completions": self.out_of_order_completions,
            "duplicates_dropped": self.duplicates_dropped,
            "worker_iterations": {
                str(worker): count
                for worker, count in sorted(self.worker_iterations.items())
            },
            "conflicts": self.conflicts,
            "misspeculation_rate": round(self.misspeculation_rate, 4),
            "serial_reexecutions": self.serial_reexecutions,
            "worker_crashes": self.worker_crashes,
            "worker_timeouts": self.worker_timeouts,
            "soft_faults": self.soft_faults,
            "respawns": self.respawns,
            "retries": self.retries,
            "producer_crashed": self.producer_crashed,
            "degraded_to_sequential": self.degraded_to_sequential,
            "cancelled": self.cancelled,
            "checkpoints_taken": self.checkpoints_taken,
            "resumed_from": self.resumed_from,
            "throttle_shrinks": self.throttle_shrinks,
            "throttle_grows": self.throttle_grows,
            "min_window": self.min_window,
            "final_window": self.final_window,
            "channels": self.channel_stats,
            "watchdog": self.watchdog,
            "bottleneck": self.bottleneck,
            "latency_histograms": {
                name: _round_floats(summary)
                for name, summary in summarize(self.latency).items()
            },
        }
        return data

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def format_summary(self) -> str:
        """Human-readable run summary for the CLI."""
        lines = [
            f"exec: {self.iterations} iterations on {self.workers} worker(s), "
            f"channel capacity {self.capacity}, {self.transport} transport",
            f"wall clock        {self.wall_seconds:.3f}s  "
            f"(A {self.stage_seconds['A']:.3f}s, B {self.stage_seconds['B']:.3f}s, "
            f"C {self.stage_seconds['C']:.3f}s busy)",
        ]
        if self.sequential_seconds is not None:
            lines.append(
                f"sequential        {self.sequential_seconds:.3f}s  "
                f"-> measured speedup {self.measured_speedup:.2f}x"
            )
        lines.append(
            f"commits           {self.commits} in order "
            f"({self.out_of_order_completions} completed out of order, "
            f"{self.duplicates_dropped} duplicates dropped)"
        )
        lines.append(
            f"speculation       {self.conflicts} conflicts "
            f"({self.misspeculation_rate:.1%}), "
            f"{self.serial_reexecutions} serial re-executions"
        )
        lines.append(
            f"robustness        {self.worker_crashes} crashes, "
            f"{self.worker_timeouts} timeouts, {self.soft_faults} soft faults, "
            f"{self.respawns} respawns, {self.retries} retries"
            + (", producer crashed" if self.producer_crashed else "")
            + (", DEGRADED to sequential" if self.degraded_to_sequential else "")
            + (", CANCELLED" if self.cancelled else "")
        )
        resilience_bits = []
        if self.resumed_from:
            resilience_bits.append(
                f"resumed from iteration {self.resumed_from}"
            )
        if self.checkpoints_taken:
            resilience_bits.append(f"{self.checkpoints_taken} checkpoints")
        if self.throttle_shrinks or self.throttle_grows:
            resilience_bits.append(
                f"throttle {self.throttle_shrinks} shrinks / "
                f"{self.throttle_grows} grows (window min {self.min_window}, "
                f"final {self.final_window})"
            )
        if resilience_bits:
            lines.append("resilience        " + ", ".join(resilience_bits))
        if self.watchdog is not None:
            lines.append(
                f"live health       {self.watchdog.get('health', '?')} "
                f"({self.watchdog.get('stalls', 0)} stalls, "
                f"{self.watchdog.get('saturations', 0)} saturations, "
                f"{self.watchdog.get('storms', 0)} storms"
                + (", ABORTED" if self.watchdog.get("aborted") else "")
                + ")"
            )
        if self.bottleneck:
            top = self.bottleneck.get("top", "?")
            fractions = self.bottleneck.get("fractions") or {}
            recommendation = self.bottleneck.get("recommendation")
            lines.append(
                f"bottleneck        {top} "
                f"({fractions.get(top, 0.0):.0%} blame, "
                f"{self.bottleneck.get('source', '?')}-based"
                + (
                    f"; try: {recommendation}" if recommendation else ""
                )
                + ")"
            )
        for name, histogram in sorted(self.latency.items()):
            if histogram.count:
                lines.append(
                    f"latency {name:<11} {histogram.format_line()}"
                )
        # Channel stats may be partial (a resumed run that finished without
        # restarting the pipeline, a degraded teardown): read defensively.
        for name, stats in self.channel_stats.items():
            lines.append(
                f"channel {name:<9} max occupancy "
                f"{stats.get('max_occupancy', 0)}/{stats.get('capacity', 0)}, "
                f"mean {stats.get('mean_occupancy', 0.0)}, "
                f"{stats.get('produces', 0)} produces / "
                f"{stats.get('consumes', 0)} consumes"
            )
        overhead = self.comm_overhead
        if overhead:
            bits = ", ".join(
                f"{name}: {info['flushes']} flushes x "
                f"{info['mean_frame_items']:.1f} items, "
                f"{info['serialize_seconds'] * 1e3:.1f}ms serialize / "
                f"{info['deserialize_seconds'] * 1e3:.1f}ms deserialize"
                for name, info in overhead.items()
            )
            lines.append(
                f"comm overhead     batch {self.batch_size} -> {bits}"
            )
        if self.worker_iterations:
            shares = ", ".join(
                f"B{worker}:{count}"
                for worker, count in sorted(self.worker_iterations.items())
            )
            lines.append(f"worker shares     {shares}")
        return "\n".join(lines)
