"""Speculative write buffers and commit-time validation.

The runtime analog of :mod:`repro.hw.versioned_memory`: every phase-B task
executes against a private :class:`WriteBuffer` seeded from a version-stamped
snapshot of committed state.  Reads record the version they observed; writes
never escape the buffer.  At commit time (strictly in iteration order, in the
committer) :class:`CommittedStore.validate` checks each recorded read against
the current committed version — a newer committed version means the task read
stale state and has *misspeculated*.  The engine then discards the buffer and
re-executes the task serially against live state: misspeculation-as-
re-execution, the wall-clock counterpart of the simulator's
misspeculation-as-serialization (§3.1).

Workers live in other processes, so unlike :class:`VersionedMemory` there is
no eager forwarding between uncommitted epochs — each buffer forwards only
from the snapshot it was seeded with, and the committer is the single point
of truth.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

Location = Tuple[str, Hashable]

#: Version number meaning "location was never written" — matches the
#: committed-version convention of :mod:`repro.hw.versioned_memory`.
NEVER_WRITTEN = -1

Snapshot = Dict[Location, Tuple[Any, int]]


class WriteBuffer:
    """One task's private speculative version of shared state.

    Picklable both empty and populated: buffers are built worker-side and
    their read/write sets travel back to the committer over a channel.
    """

    def __init__(self, snapshot: Snapshot) -> None:
        self._snapshot = snapshot
        #: location -> version observed by this task's *first* read of it
        self.reads: Dict[Location, int] = {}
        #: buffered (privatized) writes; applied only on successful commit
        self.writes: Dict[Location, Any] = {}

    def read(self, obj: str, key: Hashable = None) -> Any:
        location: Location = (obj, key)
        if location in self.writes:  # own version first
            return self.writes[location]
        value, version = self._snapshot.get(location, (None, NEVER_WRITTEN))
        if location not in self.reads:
            self.reads[location] = version
        return value

    def write(self, obj: str, key: Hashable, value: Any) -> None:
        self.writes[(obj, key)] = value

    def discard(self) -> None:
        """Rollback: forget everything this task speculated."""
        self.reads.clear()
        self.writes.clear()


class CommittedStore:
    """The committer's authoritative, version-stamped shared state."""

    def __init__(self, initial: Dict[Location, Any] = None) -> None:
        self._values: Dict[Location, Any] = dict(initial or {})
        # Seed state carries version 0 so buffers snapshotted before any
        # commit validate cleanly against it.
        self._versions: Dict[Location, int] = {
            location: 0 for location in self._values
        }
        self._commit_counter = 0
        self.conflicts_detected = 0

    def snapshot(self) -> Snapshot:
        """A version-stamped copy for seeding a :class:`WriteBuffer`."""
        return {
            location: (self._values[location], self._versions[location])
            for location in self._values
        }

    def validate(self, reads: Dict[Location, int]) -> List[Location]:
        """Locations whose committed version moved past what a task read."""
        stale = [
            location
            for location, seen_version in reads.items()
            if self._versions.get(location, NEVER_WRITTEN) != seen_version
        ]
        if stale:
            self.conflicts_detected += 1
        return stale

    def apply(self, writes: Dict[Location, Any]) -> None:
        """Commit a validated buffer's writes, bumping versions."""
        if not writes:
            return
        self._commit_counter += 1
        for location, value in writes.items():
            self._values[location] = value
            self._versions[location] = self._commit_counter

    def value(self, obj: str, key: Hashable = None) -> Any:
        return self._values.get((obj, key))

    def architectural_state(self) -> Dict[Location, Any]:
        return dict(self._values)

    # -- checkpoint support ---------------------------------------------------------

    def export_state(self) -> Tuple[Dict[Location, Any], Dict[Location, int], int]:
        """(values, versions, commit counter) — everything a checkpoint needs
        to rebuild this store exactly, version discipline included."""
        return dict(self._values), dict(self._versions), self._commit_counter

    @classmethod
    def restore(
        cls,
        values: Dict[Location, Any],
        versions: Dict[Location, int],
        commit_counter: int,
    ) -> "CommittedStore":
        """Rebuild a store from :meth:`export_state` output (resume path)."""
        store = cls()
        store._values = dict(values)
        store._versions = dict(versions)
        store._commit_counter = commit_counter
        return store

    def __repr__(self) -> str:
        return (
            f"CommittedStore({len(self._values)} locations, "
            f"{self.conflicts_detected} conflicts)"
        )
