"""Inter-process channels with the paper's full/empty blocking semantics.

:class:`ProcessChannel` is the multiprocess sibling of
:class:`repro.hw.queues.BlockingBoundedQueue`: a bounded FIFO where a
produce *blocks* while the channel is full and a consume *blocks* while it
is empty — the synchronization-array behaviour the simulator models on its
256 32-entry queues, realized on real OS pipes.

The transport is :class:`multiprocessing.Queue` (which already provides the
bounded blocking discipline); the wrapper adds what the engine's
observability layer needs: produce/consume counters in shared memory and an
occupancy-sampling hook, since exact occupancy tracking across processes
would serialize the very parallelism the engine exists to demonstrate.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

#: Sentinel that survives pickling with identity-free equality: workers
#: compare by value, so the producer's copy and the worker's copy agree.
STOP = ("__repro.exec.stop__",)


class ChannelTimeout(Exception):
    """A bounded get/put did not complete within its timeout."""


@dataclass(frozen=True)
class ChannelChaos:
    """Put-side misbehaviour for the chaos harness, keyed by put index.

    Indices count this *process's* puts on the channel, so schedules are
    deterministic on single-producer channels (the engine applies chaos to
    the phase-A work channel only).  A dropped put vanishes silently — the
    committer recovers through its stall/degradation path; a duplicated put
    exercises the exactly-once commit dedup; a delayed put is a latency
    spike on the wire.
    """

    latency_by_index: Dict[int, float] = field(default_factory=dict)
    duplicate_indices: FrozenSet[int] = field(default_factory=frozenset)
    drop_indices: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        object.__setattr__(
            self, "latency_by_index", dict(self.latency_by_index)
        )
        object.__setattr__(
            self, "duplicate_indices", frozenset(self.duplicate_indices)
        )
        object.__setattr__(self, "drop_indices", frozenset(self.drop_indices))

    @property
    def injection_count(self) -> int:
        return (
            len(self.latency_by_index)
            + len(self.duplicate_indices)
            + len(self.drop_indices)
        )


class ProcessChannel:
    """A bounded, blocking, cross-process FIFO with occupancy statistics."""

    def __init__(
        self,
        capacity: int,
        name: str = "",
        ctx=None,
        chaos: Optional[ChannelChaos] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be positive")
        ctx = ctx or multiprocessing.get_context()
        self.capacity = capacity
        self.name = name
        self.chaos = chaos
        self._put_index = 0  # per-process; see ChannelChaos determinism note
        self._queue = ctx.Queue(maxsize=capacity)
        self._produces = ctx.Value("L", 0)
        self._consumes = ctx.Value("L", 0)
        self.max_occupancy_seen = 0
        self.occupancy_samples = 0
        self.occupancy_total = 0

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        """Produce ``item``; block while full (raise on timeout, if given)."""
        # The index advances only once the put resolves (success or drop):
        # producers retry timed-out puts, and a retry must replay the same
        # chaos decision rather than burn a fresh index.
        index = self._put_index
        chaos = self.chaos
        repeats = 1
        if chaos is not None:
            if index in chaos.drop_indices:
                self._put_index = index + 1
                return
            delay = chaos.latency_by_index.get(index)
            if delay:
                time.sleep(delay)
            if index in chaos.duplicate_indices:
                repeats = 2
        for _ in range(repeats):
            try:
                self._queue.put(item, block=True, timeout=timeout)
            except _queue_module.Full:
                raise ChannelTimeout(
                    f"channel {self.name or id(self)} full for {timeout}s"
                ) from None
            with self._produces.get_lock():
                self._produces.value += 1
        self._put_index = index + 1

    def get(self, timeout: Optional[float] = None) -> Any:
        """Consume the oldest item; block while empty (raise on timeout)."""
        try:
            item = self._queue.get(block=True, timeout=timeout)
        except _queue_module.Empty:
            raise ChannelTimeout(
                f"channel {self.name or id(self)} empty for {timeout}s"
            ) from None
        with self._consumes.get_lock():
            self._consumes.value += 1
        return item

    @property
    def produces(self) -> int:
        return self._produces.value

    @property
    def consumes(self) -> int:
        return self._consumes.value

    def sample_occupancy(self) -> int:
        """Record one occupancy observation (engine-side polling).

        ``qsize`` is advisory on a live multiprocess queue — items may be in
        a feeder thread's buffer — which is exactly the fidelity a hardware
        occupancy counter would give a polling observer.
        """
        try:
            occupancy = self._queue.qsize()
        except NotImplementedError:  # macOS lacks sem_getvalue
            occupancy = max(0, self.produces - self.consumes)
        self.max_occupancy_seen = max(self.max_occupancy_seen, occupancy)
        self.occupancy_samples += 1
        self.occupancy_total += occupancy
        return occupancy

    def occupancy_stats(self) -> dict:
        mean = (
            self.occupancy_total / self.occupancy_samples
            if self.occupancy_samples
            else 0.0
        )
        return {
            "capacity": self.capacity,
            "produces": self.produces,
            "consumes": self.consumes,
            "max_occupancy": self.max_occupancy_seen,
            "mean_occupancy": round(mean, 3),
            "samples": self.occupancy_samples,
        }

    def drain(self) -> list:
        """Non-blocking removal of everything currently visible."""
        items = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except _queue_module.Empty:
                return items
            except (EOFError, OSError):
                return items

    def flush_and_close(self) -> None:
        """Flush this process's pending puts to the pipe, then close.

        A process about to hard-exit (``os._exit``) must call this first:
        puts are serviced by a feeder thread, and an immediate exit could
        drop messages that the committer's crash recovery depends on.
        """
        self._queue.close()
        self._queue.join_thread()

    def close(self) -> None:
        """Close the transport without waiting for the feeder thread.

        Called on teardown paths where child processes may already be dead;
        ``cancel_join_thread`` keeps an unflushed feeder from wedging exit.
        """
        self._queue.cancel_join_thread()
        self._queue.close()

    def __repr__(self) -> str:
        return f"ProcessChannel({self.name!r}, capacity={self.capacity})"
