"""Inter-process channels with the paper's full/empty blocking semantics.

:class:`ProcessChannel` is the multiprocess sibling of
:class:`repro.hw.queues.BlockingBoundedQueue`: a bounded FIFO where a
produce *blocks* while the channel is full and a consume *blocks* while it
is empty — the synchronization-array behaviour the simulator models on its
256 32-entry queues, realized on real OS pipes.

The wire beneath the channel is pluggable (:mod:`repro.exec.transport`):
the classic ``multiprocessing.Queue`` pipe, a zero-copy shared-memory ring
(``transport="shm"``), or an in-process deque for thread-mode pipelines
(``transport="thread"``).  The channel layer adds what the engine needs on
top of any wire:

**Batched framed transport (the fast path).**  The paper's synchronization
array moves a value between cores in a handful of cycles; a naive
``Queue.put`` per work item instead pays a pickle, a pipe write, and two
shared-memory lock acquisitions per item, so small-payload pipelines are
dominated by communication overhead.  A channel constructed with
``batch_size > 1`` therefore *frames* its traffic: producers accumulate up
to ``batch_size`` items and flush them as one frame — a single serialized
payload, one pipe round-trip — when the batch fills, when ``flush_interval``
seconds have passed since the first buffered item (the latency bound), or
when the producer explicitly flushes (on STOP, before blocking waits, and
at close).  Consumers unframe transparently: :meth:`get` still hands back
one item at a time, in order, so the committer, throttle watermarks, chaos
schedules, and exactly-once dedup all keep their per-item semantics.

Frames are serialized once with ``pickle.dumps(protocol=HIGHEST_PROTOCOL)``
so the queue's feeder only re-pickles an opaque bytes blob; homogeneous
``bytes`` payloads skip pickle entirely via a length-prefixed raw mode.

**Capacity is counted in items, not frames.**  The bounded-queue invariant
("no channel ever observed above its 32-entry capacity") must survive
batching, so flow control is credit-based on the shared produce/consume
counters: a flush blocks while ``produces - consumes + frame_len`` would
exceed ``capacity``.  :meth:`sample_occupancy` likewise reports
item-granular occupancy, never frames.

**Lock-light counters.**  Shared produce/consume counters are updated once
per *frame* (one lock acquisition carries up to ``batch_size`` items)
instead of once per item.

Chaos decisions (:class:`ChannelChaos`) are keyed by *item* index and are
applied exactly once, when the item is accepted into the send buffer — so a
flush that times out and is retried can never re-apply a latency sleep or
re-enqueue the first copy of a duplicated put.  Consequently a
:class:`ChannelTimeout` from :meth:`put`/:meth:`put_many` means *accepted
but not yet delivered*: retry with :meth:`flush`, not by re-putting the
item.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.obs.events import CHANNEL_IDS, ChaosCode, EventKind
from repro.exec.transport import (
    TransportEmpty,
    TransportFull,
    make_transport,
)

logger = logging.getLogger(__name__)

_CHAOS_LATENCY = int(ChaosCode.CHANNEL_LATENCY)
_CHAOS_DUPLICATE = int(ChaosCode.CHANNEL_DUPLICATE)
_CHAOS_DROP = int(ChaosCode.CHANNEL_DROP)

#: Sentinel that survives pickling with identity-free equality: workers
#: compare by value, so the producer's copy and the worker's copy agree.
#: STOP is never buried mid-frame: putting it flushes the batch first and
#: sends the sentinel as its own unframed message.
STOP = ("__repro.exec.stop__",)

#: Frame tags.  Payload items in this engine are protocol tuples keyed by
#: small ints/strings, so collision with user data is not a practical
#: concern (and is documented: do not send 2/3-tuples led by these tags).
_FRAME_TAG = "__repro.exec.frame__"
_RAW_TAG = "__repro.exec.frame.raw__"

#: How often a credit-starved flush re-checks the consume counter.  A
#: flat 1 ms sleep, on purpose: finer-grained polling (and event-driven
#: wakeups) both measured *slower* end-to-end on oversubscribed boxes —
#: the extra wakeups steal cycles from the pipeline processes that would
#: free the credit.
_CREDIT_POLL = 0.001

#: Queue waits shorter than this are not traced: they are scheduling
#: noise, and recording them would swamp the bounded spool ring.
_TRACE_WAIT_NS = 100_000


class ChannelTimeout(Exception):
    """A bounded get/put/flush did not complete within its timeout."""


def encode_frame(items: List[Any]) -> tuple:
    """Serialize ``items`` into one frame payload.

    Homogeneous ``bytes`` payloads use a length-prefixed raw concatenation
    (no pickle of the items at all); everything else is pickled once at
    ``HIGHEST_PROTOCOL`` so the queue's feeder thread only copies an opaque
    blob instead of re-walking the object graph.
    """
    if len(items) > 1 and all(type(item) is bytes for item in items):
        return (_RAW_TAG, tuple(len(item) for item in items), b"".join(items))
    return (_FRAME_TAG, pickle.dumps(list(items), pickle.HIGHEST_PROTOCOL))


def decode_frame(obj: Any) -> Optional[List[Any]]:
    """The inverse of :func:`encode_frame`; ``None`` for unframed items."""
    if type(obj) is tuple:
        if len(obj) == 2 and obj[0] == _FRAME_TAG and type(obj[1]) is bytes:
            return pickle.loads(obj[1])
        if len(obj) == 3 and obj[0] == _RAW_TAG:
            _, lengths, blob = obj
            items: List[Any] = []
            offset = 0
            for length in lengths:
                items.append(blob[offset : offset + length])
                offset += length
            return items
    return None


@dataclass(frozen=True)
class ChannelChaos:
    """Put-side misbehaviour for the chaos harness, keyed by item index.

    Indices count this *process's* payload items on the channel, so
    schedules are deterministic on single-producer channels (the engine
    applies chaos to the phase-A work channel only).  A dropped item
    vanishes silently — the committer recovers through its
    stall/degradation path; a duplicated item exercises the exactly-once
    commit dedup; a delayed item is a latency spike on the wire.  Decisions
    are applied exactly once per index, when the item enters the send
    buffer, so timed-out flush retries are idempotent.
    """

    latency_by_index: Dict[int, float] = field(default_factory=dict)
    duplicate_indices: FrozenSet[int] = field(default_factory=frozenset)
    drop_indices: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        object.__setattr__(
            self, "latency_by_index", dict(self.latency_by_index)
        )
        object.__setattr__(
            self, "duplicate_indices", frozenset(self.duplicate_indices)
        )
        object.__setattr__(self, "drop_indices", frozenset(self.drop_indices))

    @property
    def injection_count(self) -> int:
        return (
            len(self.latency_by_index)
            + len(self.duplicate_indices)
            + len(self.drop_indices)
        )


class ProcessChannel:
    """A bounded, blocking, cross-process FIFO with batched framed transport
    and item-granular occupancy statistics."""

    def __init__(
        self,
        capacity: int,
        name: str = "",
        ctx=None,
        chaos: Optional[ChannelChaos] = None,
        batch_size: int = 1,
        flush_interval: float = 0.005,
        transport: Any = "pipe",
    ) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        if flush_interval <= 0:
            raise ValueError("flush interval must be positive")
        ctx = ctx or multiprocessing.get_context()
        self.capacity = capacity
        #: Frames never outnumber their items, so a frame-count bound of
        #: ``capacity`` can never bound tighter than the item credit does;
        #: the credit check below is the real full/empty discipline.
        self.batch_size = min(batch_size, capacity)
        self.flush_interval = flush_interval
        self.name = name
        self.chaos = chaos
        self._put_index = 0  # per-process; see ChannelChaos determinism note
        #: The wire (see :mod:`repro.exec.transport`): a backend name or a
        #: pre-built transport instance (tests inject custom rings).
        self._transport = (
            transport
            if not isinstance(transport, str)
            else make_transport(transport, ctx, capacity)
        )
        self._produces = ctx.Value("L", 0)
        self._consumes = ctx.Value("L", 0)
        self._flushes = ctx.Value("L", 0)
        self._serialize_seconds = ctx.Value("d", 0.0)
        self._deserialize_seconds = ctx.Value("d", 0.0)
        self._serialize_local = 0.0
        self._send_buffer: List[Any] = []
        self._send_since: Optional[float] = None
        self._recv: deque = deque()
        self.max_occupancy_seen = 0
        self.occupancy_samples = 0
        self.occupancy_total = 0
        #: Per-process trace sink (``repro.obs`` SpoolWriter), set *after*
        #: fork/spawn by each process that wants its waits on the timeline.
        #: Never pickled: every process owns its own spool.
        self.tracer = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def _trace_wait(self, kind: int, t0_ns: int, t1_ns: int) -> None:
        tracer = self.tracer
        if tracer is not None and t1_ns - t0_ns >= _TRACE_WAIT_NS:
            tracer.span(
                kind, t0_ns, t1_ns, detail=CHANNEL_IDS.get(self.name, 255)
            )

    def _trace_chaos(self, kind: int, index: int, code: int) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(kind, arg=index, detail=code)

    # -- produce side -----------------------------------------------------------

    def _append(self, item: Any) -> None:
        """Accept one item into the send buffer, applying (and thereby
        memoizing) its chaos decision exactly once."""
        index = self._put_index
        self._put_index = index + 1
        copies = 1
        chaos = self.chaos
        if chaos is not None:
            if index in chaos.drop_indices:
                logger.info(
                    "chaos: dropping item at put-index %d on channel %r",
                    index, self.name,
                )
                self._trace_chaos(EventKind.CHAOS, index, _CHAOS_DROP)
                return
            delay = chaos.latency_by_index.get(index)
            if delay:
                logger.info(
                    "chaos: delaying item at put-index %d on channel %r "
                    "by %.3fs", index, self.name, delay,
                )
                self._trace_chaos(EventKind.CHAOS, index, _CHAOS_LATENCY)
                time.sleep(delay)
            if index in chaos.duplicate_indices:
                logger.info(
                    "chaos: duplicating item at put-index %d on channel %r",
                    index, self.name,
                )
                self._trace_chaos(EventKind.CHAOS, index, _CHAOS_DUPLICATE)
                copies = 2
        for _ in range(copies):
            self._send_buffer.append(item)
        if self._send_since is None:
            self._send_since = time.monotonic()

    def put_buffered(self, item: Any) -> None:
        """Accept ``item`` without flushing — the chunk-building primitive.

        Never blocks; the caller decides when to :meth:`flush` (the engine's
        producer grows its chunk adaptively and flushes per chunk).
        """
        self._append(item)

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        """Produce ``item``; block while the channel is full.

        With ``batch_size == 1`` every put flushes immediately (the classic
        unbatched wire format).  Otherwise the item joins the current batch,
        which flushes when full or when the latency bound expires.  On
        :class:`ChannelTimeout` the item remains accepted in the send
        buffer — retry with :meth:`flush`, never by re-putting.
        """
        if item == STOP:
            self.flush(timeout=timeout)
            self._send_frame([STOP], self._deadline(timeout), framed=False)
            return
        self._append(item)
        if self.batch_size == 1 or len(self._send_buffer) >= self.batch_size:
            self.flush(timeout=timeout, partial=self.batch_size == 1)
        elif self.flush_due():
            self.flush(timeout=timeout)

    def put_many(self, items: List[Any], timeout: Optional[float] = None) -> None:
        """Produce ``items`` as (a) whole frame(s) — one chunk dispatch.

        All items are accepted (chaos applied per item) before the flush, so
        a timeout leaves them pending rather than half-applied.
        """
        for item in items:
            self._append(item)
        self.flush(timeout=timeout)

    @property
    def pending_items(self) -> int:
        """Items accepted but not yet flushed to the transport."""
        return len(self._send_buffer)

    def flush_due(self) -> bool:
        """Has the latency bound expired on the oldest buffered item?"""
        return (
            self._send_since is not None
            and time.monotonic() - self._send_since >= self.flush_interval
        )

    @staticmethod
    def _deadline(timeout: Optional[float]) -> Optional[float]:
        return None if timeout is None else time.monotonic() + timeout

    def flush(self, timeout: Optional[float] = None, partial: bool = True) -> None:
        """Push buffered items to the transport as frames of ``batch_size``.

        ``partial=False`` sends only full frames (leaving a short remainder
        buffered for the next batch); the default drains everything.  Raises
        :class:`ChannelTimeout` if item credit does not free up in time —
        the unsent items stay buffered and a later flush retries them
        without re-applying chaos.
        """
        deadline = self._deadline(timeout)
        buffer = self._send_buffer
        while buffer:
            count = min(len(buffer), self.batch_size)
            if count < self.batch_size and not partial:
                return
            self._send_frame(buffer[:count], deadline, framed=count > 1)
            del buffer[:count]
        self._send_since = None

    def _send_frame(
        self, items: List[Any], deadline: Optional[float], framed: bool
    ) -> None:
        self._acquire_credit(len(items), deadline)
        # Credit guarantees a frame slot on the pipe wire (frames <= items
        # <= capacity) but not ring *bytes* on the shm wire, so the send
        # timeout is a real bound there and a defensive one elsewhere;
        # either way the deadline the caller set caps the wait.
        wait = (
            5.0
            if deadline is None
            else max(0.0, min(5.0, deadline - time.monotonic()))
        )
        try:
            self._serialize_local += self._transport.send(items, framed, wait)
        except TransportFull:
            with self._produces.get_lock():
                self._produces.value -= len(items)
            raise ChannelTimeout(
                f"channel {self.name or id(self)} transport full"
            ) from None
        except Exception:
            with self._produces.get_lock():
                self._produces.value -= len(items)
            raise
        with self._flushes.get_lock():
            self._flushes.value += 1
            if self._serialize_local:
                with self._serialize_seconds.get_lock():
                    self._serialize_seconds.value += self._serialize_local
                self._serialize_local = 0.0

    def _acquire_credit(self, count: int, deadline: Optional[float]) -> None:
        """Block until ``count`` items fit under ``capacity`` — the
        full-side of the synchronization-array blocking discipline, one
        lock acquisition per frame."""
        wait_started_ns: Optional[int] = None
        while True:
            with self._produces.get_lock():
                occupancy = self._produces.value - self._consumes.value
                if occupancy + count <= self.capacity:
                    self._produces.value += count
                    if wait_started_ns is not None:
                        self._trace_wait(
                            EventKind.QUEUE_PUT_WAIT,
                            wait_started_ns,
                            time.perf_counter_ns(),
                        )
                    return
            if wait_started_ns is None:
                wait_started_ns = time.perf_counter_ns()
            if deadline is not None and time.monotonic() >= deadline:
                raise ChannelTimeout(
                    f"channel {self.name or id(self)} full "
                    f"({self.capacity} items)"
                )
            time.sleep(_CREDIT_POLL)

    # -- consume side -----------------------------------------------------------

    def _recv_frame(self, timeout: Optional[float]) -> tuple:
        """One blocking transport read -> ``(items, single)``.

        Exactly one of the pair is meaningful (``items is None`` marks an
        unframed message).  Advances the consume counter once per frame
        and accounts the decode time — the receive-side mirror of the
        sender's ``serialize_seconds``.
        """
        wait_started_ns = (
            time.perf_counter_ns() if self.tracer is not None else 0
        )
        try:
            items, single, deserialize_seconds = self._transport.recv(timeout)
        except TransportEmpty:
            # Idle polls (the committer's poll_interval heartbeat) are not
            # queue waits; only a successful get records one.
            raise ChannelTimeout(
                f"channel {self.name or id(self)} empty for {timeout}s"
            ) from None
        if self.tracer is not None:
            self._trace_wait(
                EventKind.QUEUE_GET_WAIT,
                wait_started_ns,
                time.perf_counter_ns(),
            )
        if deserialize_seconds:
            with self._deserialize_seconds.get_lock():
                self._deserialize_seconds.value += deserialize_seconds
        with self._consumes.get_lock():
            self._consumes.value += 1 if items is None else len(items)
        return items, single

    def get(self, timeout: Optional[float] = None) -> Any:
        """Consume the oldest item; block while empty (raise on timeout).

        Frames are decoded transparently: one transport read replenishes
        the local receive buffer with up to ``batch_size`` items, and the
        consume counter advances once per frame, not once per item.
        """
        if self._recv:
            return self._recv.popleft()
        items, single = self._recv_frame(timeout)
        if items is None:
            return single
        self._recv.extend(items)
        return self._recv.popleft()

    def get_many(self, max_items: int, timeout: Optional[float] = None) -> list:
        """Consume up to ``max_items`` with a single blocking transport read.

        Returns at least one item (blocking like :meth:`get` for the
        first), then drains the already-decoded frame from the local buffer
        — one worker wakeup per frame, and frame affinity keeps a dispatched
        chunk on the worker that claimed it.  STOP is never mixed into a
        batch: it is returned alone, and a buffered STOP ends the batch
        early (left for the next call).

        Fast path: when the receive buffer is empty and one whole frame
        fits the request (no buried STOP — the producer never frames one,
        this is defense in depth), the decoded frame is handed back as-is,
        with no per-item deque round-trip.
        """
        recv = self._recv
        if not recv:
            items, single = self._recv_frame(timeout)
            if items is None:
                return [single]
            if len(items) <= max_items:
                for item in items:
                    if item == STOP:
                        break
                else:
                    return items
            recv.extend(items)
        out = [recv.popleft()]
        if out[0] == STOP:
            return out
        while len(out) < max_items and recv and recv[0] != STOP:
            out.append(recv.popleft())
        return out

    @property
    def produces(self) -> int:
        return self._produces.value

    @property
    def consumes(self) -> int:
        return self._consumes.value

    def sample_occupancy(self) -> int:
        """Record one item-granular occupancy observation.

        Occupancy is ``produces - consumes``: items flushed to the transport
        and not yet decoded by a consumer.  Counting items (never frames)
        keeps the bounded-queue invariant's 32-entry semantics under
        batching, and the shared counters are exact where ``qsize`` is
        advisory.
        """
        occupancy = max(0, self.produces - self.consumes)
        self.max_occupancy_seen = max(self.max_occupancy_seen, occupancy)
        self.occupancy_samples += 1
        self.occupancy_total += occupancy
        return occupancy

    def occupancy_stats(self) -> dict:
        mean = (
            self.occupancy_total / self.occupancy_samples
            if self.occupancy_samples
            else 0.0
        )
        flushes = self._flushes.value
        return {
            "capacity": self.capacity,
            "batch_size": self.batch_size,
            "transport": self.transport_kind,
            "produces": self.produces,
            "consumes": self.consumes,
            "max_occupancy": self.max_occupancy_seen,
            "mean_occupancy": round(mean, 3),
            "samples": self.occupancy_samples,
            "flushes": flushes,
            "mean_frame_items": (
                round(self.produces / flushes, 3) if flushes else 0.0
            ),
            "serialize_seconds": round(self._serialize_seconds.value, 6),
            "deserialize_seconds": round(
                self._deserialize_seconds.value, 6
            ),
        }

    def drain(self) -> list:
        """Non-blocking removal of everything currently visible.

        Consumed frames are counted so their item credit is released —
        teardown paths drain the done channel precisely to unwedge senders
        blocked on a full channel.
        """
        items = list(self._recv)
        self._recv.clear()
        while True:
            try:
                decoded, single, _ = self._transport.recv_nowait()
            except TransportEmpty:
                return items
            except (EOFError, OSError):
                return items
            with self._consumes.get_lock():
                self._consumes.value += 1 if decoded is None else len(decoded)
            if decoded is None:
                items.append(single)
            else:
                items.extend(decoded)

    # -- pooled reuse (repro.service) --------------------------------------------

    def reset_local(self) -> None:
        """Drop this *process's* local buffers: unflushed send items and
        undecoded receive items.

        The worker-pool runtime reuses one channel across many jobs; a
        lease that ended with items still buffered locally (a flush that
        timed out during teardown, results the committer never read) must
        not leak those items into the next job's stream.  Dropped send
        items never acquired credit and dropped receive items already
        released theirs, so the shared counters stay consistent.
        """
        self._send_buffer.clear()
        self._send_since = None
        self._recv.clear()

    def reset_counters(self) -> None:
        """Zero the shared produce/consume/flush counters.

        Only legal while the channel is quiescent (no process is putting
        or getting — the pool calls this between leases, after a full
        drain).  Keeps per-job occupancy stats meaningful and the unsigned
        counters from creeping toward wraparound over a long-lived server.

        Raises :class:`ChannelTimeout` if a counter lock cannot be acquired
        promptly — a process terminated mid-update orphans the lock, and a
        blocking acquire would wedge the caller forever; the pool reacts by
        quarantining the slot instead of reusing it.
        """
        for value in (self._produces, self._consumes, self._flushes):
            lock = value.get_lock()
            if not lock.acquire(timeout=1.0):
                raise ChannelTimeout(
                    f"channel {self.name or id(self)} counter lock wedged"
                )
            try:
                value.value = 0
            finally:
                lock.release()
        for value in (self._serialize_seconds, self._deserialize_seconds):
            lock = value.get_lock()
            if not lock.acquire(timeout=1.0):
                raise ChannelTimeout(
                    f"channel {self.name or id(self)} counter lock wedged"
                )
            try:
                value.value = 0.0
            finally:
                lock.release()
        self._serialize_local = 0.0
        self._put_index = 0
        self.max_occupancy_seen = 0
        self.occupancy_samples = 0
        self.occupancy_total = 0

    def flush_and_close(self, flush_timeout: float = 2.0) -> None:
        """Flush this process's pending items to the wire, then close.

        A process about to hard-exit (``os._exit``) must call this first:
        batched items live in the send buffer and (on the pipe wire)
        queued puts are serviced by a feeder thread, so an immediate exit
        could drop messages that the committer's crash recovery depends
        on.  Closing only releases *this process's* side: an shm segment
        is unlinked solely by its owning (creating) process.
        """
        try:
            self.flush(timeout=flush_timeout)
        except ChannelTimeout:
            pass  # full channel with no consumer left; don't wedge the exit
        self._transport.close(join=True)

    def close(self) -> None:
        """Close the transport without waiting on peers.

        Called on teardown paths where child processes may already be
        dead; must never wedge.  In the creating process this also unlinks
        an shm ring, so even ``_halt()`` after a crashed run leaves no
        ``/dev/shm`` segment behind.
        """
        self._transport.close(join=False)

    @property
    def transport_kind(self) -> str:
        return self._transport.kind

    def for_caller(self) -> "ProcessChannel":
        """A thread-local view of this channel: shared wire, counters, and
        chaos schedule, but private send/receive buffers and put index.

        Thread-mode pipelines hand each producer/worker thread its own
        view — the same isolation a process gets implicitly from fork
        (which copies the local buffers) — so concurrent stages never race
        on ``_send_buffer``/``_recv``.
        """
        clone = object.__new__(ProcessChannel)
        clone.__dict__.update(self.__dict__)
        clone._put_index = 0
        clone._serialize_local = 0.0
        clone._send_buffer = []
        clone._send_since = None
        clone._recv = deque()
        clone.max_occupancy_seen = 0
        clone.occupancy_samples = 0
        clone.occupancy_total = 0
        clone.tracer = None
        return clone

    def __repr__(self) -> str:
        return (
            f"ProcessChannel({self.name!r}, capacity={self.capacity}, "
            f"batch_size={self.batch_size}, "
            f"transport={self.transport_kind!r})"
        )
