"""The multiprocess pipeline execution engine.

Where :mod:`repro.core.simulator` *predicts* the makespan of the paper's
A/B/C pipeline from abstract task costs, and :mod:`repro.dswp.runtime`
*demonstrates* its correctness on GIL-bound threads, this engine *runs* it:
one phase-A producer process, N replicated phase-B worker processes pulling
from a bounded inter-process channel, and an in-order committer (phase C)
in the calling process — real parallelism on real cores.

Execution is speculative in the versioned-memory sense: each B task runs
against a private :class:`~repro.exec.rollback.WriteBuffer`; the committer
validates read versions at commit time and, on conflict, discards the
buffer and re-executes the task serially — misspeculation-as-re-execution.
The same serial-re-execution path absorbs worker crashes, hangs, and soft
faults (:mod:`repro.exec.faults`), so every iteration commits exactly once,
in order, no matter what the processes do.  If failures exhaust the respawn
budget or progress stalls entirely, the engine degrades to sequential
execution and still produces the exact sequential output.

Resilience (PR 2) is layered on top via :mod:`repro.resilience`:

- **checkpoint/resume** — the committer snapshots the committed prefix
  every ``CheckpointConfig.interval`` commits; ``run(spec, resume_from=...)``
  restarts from the last committed iteration instead of from zero;
- **adaptive speculation throttling** — an AIMD controller watches the
  live conflict/fault rate and shrinks the speculative window (published
  to workers through shared memory) under misspeculation storms, probing
  back up when they pass;
- **chaos injection** — the extended :class:`FaultPlan` and
  :class:`~repro.exec.channels.ChannelChaos` carry seeded randomized
  schedules; cross-layer invariants audit every run.

:class:`PipelineSpec` describes one pipeline; workloads expose one via
:meth:`repro.workloads.base.Workload.exec_spec`.  A spec can also be built
from the simulator's own :class:`~repro.core.tasks.TaskGraph`
(:func:`spec_from_task_graph`), which replays abstract costs as calibrated
busy-work — the bridge for simulated-vs-measured calibration tables.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.plan import ExecutionPlan
from repro.core.tasks import Phase, TaskGraph
from repro.exec.channels import ChannelChaos, ChannelTimeout, ProcessChannel
from repro.exec.faults import FaultPlan, RobustnessPolicy
from repro.exec.metrics import EngineMetrics
from repro.exec.rollback import CommittedStore, Location, WriteBuffer
from repro.exec.transport import TRANSPORT_KINDS
from repro.exec.workers import (
    HardExit,
    ShutdownGuard,
    producer_main,
    raise_hard_exit,
    worker_main,
)
from repro.obs.clock import now_ns
from repro.obs.events import EventKind, TraceConfig
from repro.obs.live import LiveConfig, LiveMonitor
from repro.obs.registry import (
    MetricsRegistry,
    WRITER_COMMITTER,
    WRITER_PRODUCER,
    WRITER_WORKER0,
    writers_for,
)
from repro.obs.serve import MetricsServer
from repro.obs.spool import open_tracer
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    CheckpointManager,
    spec_fingerprint,
)
from repro.resilience.throttle import (
    SpeculationThrottle,
    ThrottleConfig,
    max_window_for,
)

logger = logging.getLogger(__name__)

#: Window published to workers when throttling is disabled: effectively
#: unbounded speculation depth.
_UNTHROTTLED_WINDOW = 2 ** 30


def _identity(accumulator: Any) -> Any:
    return accumulator


class _ThreadHandle:
    """A process-like facade over a pipeline stage running as a thread.

    The ``thread`` transport keeps every stage in the calling process, but
    the committer's health machinery speaks the ``multiprocessing.Process``
    dialect — ``is_alive``/``exitcode``/``terminate``/``join``.  Injected
    crashes arrive as :class:`HardExit` (raised by the injected
    ``hard_exit``) and land in ``exitcode`` exactly as ``os._exit`` codes
    would, so crash accounting and respawn budgets behave identically
    across transports.  ``terminate`` is necessarily a no-op: a hung
    thread cannot be killed, only abandoned — it is daemonic and any late
    duplicate results it sends are dropped by the committer.
    """

    def __init__(self, target, args, name: str) -> None:
        self.exitcode: Optional[int] = None
        self._thread = threading.Thread(
            target=self._run, args=(target, args), name=name, daemon=True
        )

    def _run(self, target, args) -> None:
        code = 0
        try:
            target(*args)
        except HardExit as stop:
            code = stop.code
        except BaseException:
            logger.exception(
                "pipeline thread %s died", self._thread.name
            )
            code = 1
        self.exitcode = code

    def start(self) -> None:
        self._thread.start()

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def terminate(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)


def _dict_accumulator() -> dict:
    return {}


@dataclass
class PipelineSpec:
    """One executable A/B/C pipeline.

    ``produce`` and ``work`` cross process boundaries and must be picklable
    (module-level functions, ``functools.partial`` over picklable state, or
    instances of module-level classes).  ``init``/``commit``/``finalize``
    run only in the committer and may close over anything.

    When ``speculative`` is true, ``work`` takes ``(i, value, ctx)`` where
    ``ctx`` is a :class:`WriteBuffer` over shared state seeded from
    ``shared_state``; otherwise ``work`` takes ``(i, value)``.
    """

    iterations: int
    produce: Callable[[int], Any]
    work: Callable
    init: Callable[[], Any] = _dict_accumulator
    commit: Callable[[int, Any, Any], None] = lambda i, result, acc: None
    finalize: Callable[[Any], Any] = _identity
    shared_state: Dict[Location, Any] = field(default_factory=dict)
    speculative: bool = False

    def __post_init__(self):
        if self.iterations < 0:
            raise ValueError("iterations cannot be negative")


@dataclass
class EngineResult:
    """What one engine run produced."""

    output: Any
    metrics: EngineMetrics
    state: Dict[Location, Any]
    checkpoints: List[Checkpoint] = field(default_factory=list)


def run_sequential(spec: PipelineSpec) -> Tuple[Any, float]:
    """The bit-exact sequential reference; returns (output, wall seconds).

    This is the baseline the engine's outputs are asserted identical to and
    the denominator of every measured speedup.
    """
    started = time.monotonic()
    store = CommittedStore(spec.shared_state)
    accumulator = spec.init()
    for i in range(spec.iterations):
        value = spec.produce(i)
        if spec.speculative:
            buffer = WriteBuffer(store.snapshot())
            result = spec.work(i, value, buffer)
            store.apply(buffer.writes)
        else:
            result = spec.work(i, value)
        spec.commit(i, result, accumulator)
    return spec.finalize(accumulator), time.monotonic() - started


class ExecutionEngine:
    """Runs a :class:`PipelineSpec` on real OS processes.

    ``workers`` may come straight from an :class:`ExecutionPlan` — the same
    plan the simulator consumes — via ``plan.replication_width``.

    ``throttle`` (default: enabled) is the adaptive-speculation controller;
    ``checkpoints`` (default: off) enables periodic committed-prefix
    checkpoints; ``channel_chaos`` injects put-side misbehaviour into the
    phase-A work channel (chaos harness only).  Any ``fault_plan`` has its
    ``hang_seconds`` clamped to the policy's task timeout at construction,
    so a misconfigured hang injection can never stall a run past the
    timeout it is meant to exercise.

    ``batch_size`` (default 16, clamped to ``capacity``) is the fast path:
    the producer dispatches adaptively-growing chunks of up to this many
    iterations per frame, workers batch their claim/result messages the
    same way, and both channels run the framed transport — one pickle and
    one pipe round-trip per frame instead of per item.  ``batch_size=1``
    restores the classic unbatched wire format.  ``flush_interval`` bounds
    how long a partial batch may wait before it is flushed anyway.

    ``transport`` selects the wire beneath both channels (see
    :mod:`repro.exec.transport`): ``"pipe"`` (the default, a
    ``multiprocessing.Queue``), ``"shm"`` (the zero-copy shared-memory
    ring — the high-throughput data plane), or ``"thread"`` (stages run
    as threads of the calling process; items move by reference, injected
    crashes unwind via :class:`HardExit` instead of ``os._exit``, and
    hung stages are abandoned rather than killed).  Output is bit
    identical across all three.

    ``trace`` (default: off) attaches the structured tracing layer of
    :mod:`repro.obs`: the producer, every worker, and the committer write
    timestamped span/event records into per-process ring spools under
    ``trace.spool_dir``; :func:`repro.obs.merge.merge_spool_dir` turns them
    into one timeline after the run.  Tracing never takes down a run — an
    unwritable spool degrades to no tracing for that process.

    ``live`` (default: off) attaches the real-time telemetry plane of
    :mod:`repro.obs.live`: a shared-memory :class:`MetricsRegistry` the
    producer, workers, and committer write in-band (one lock-free slot
    store per update), a sampling monitor thread with a
    stall/saturation/storm watchdog, an optional HTTP endpoint serving
    ``/metrics`` + ``/snapshot`` + ``/health`` (``live.serve``), and an
    optional one-line TUI (``live.watch``).  The watchdog escalates the
    resilience way — log, then health=degraded, then (with
    ``live.abort_on_stall``) abort through the same degradation path the
    engine already uses for dead pipelines, post-mortem trace included.
    After the run the watchdog's summary is on ``metrics.watchdog`` and the
    bound HTTP port (if any) on :attr:`live_server_port`.

    ``runtime`` (default: none) runs the pipeline against a *pre-existing*
    worker-pool lease (:class:`repro.service.pool.LeaseRuntime`) instead of
    forking a fresh producer/worker tree: the runtime supplies the
    channels, shutdown event, watermark/window values, metrics registry,
    producer handle, and leased worker processes, and takes over respawn,
    teardown, halt, and cancellation.  The committer loop, speculation
    validation, throttling, and degradation machinery are identical in
    both modes — only process lifecycle is delegated.  The duck-typed
    contract the runtime must satisfy:

    - attributes ``work``/``done`` (:class:`ProcessChannel`), ``shutdown``
      (cleared event), ``watermark``/``window`` (shared ``Value("l")``),
      ``registry`` (:class:`MetricsRegistry` or None), and
      ``job_throttle`` (a :class:`SpeculationThrottle`-shaped controller
      or None — per-tenant persistent in the service);
    - ``start_producer(spec, start, batch_size, fault_plan)`` returning a
      process-like handle (``is_alive``/``exitcode``/``terminate``/
      ``join``);
    - ``workers()`` returning ``{wid: handle}`` for the leased workers;
    - ``respawn()`` returning ``(wid, handle)`` for a replacement worker
      already leased to this job;
    - ``cancelled()`` polled by the committer loop;
    - ``teardown(producer, processes, done, join_timeout)`` (cooperative)
      and ``halt(producer, processes, join_timeout)`` (emergency).
    """

    def __init__(
        self,
        workers: int = 4,
        capacity: int = 32,
        policy: Optional[RobustnessPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        plan: Optional[ExecutionPlan] = None,
        start_method: Optional[str] = None,
        throttle: Optional[ThrottleConfig] = None,
        checkpoints: Optional[CheckpointConfig] = None,
        channel_chaos: Optional[ChannelChaos] = None,
        batch_size: int = 16,
        flush_interval: float = 0.005,
        transport: str = "pipe",
        trace: Optional[TraceConfig] = None,
        live: Optional[LiveConfig] = None,
        runtime: Optional[Any] = None,
    ) -> None:
        if plan is not None:
            workers = max(1, plan.replication_width)
        if workers < 1:
            raise ValueError("need at least one worker")
        if capacity < 1:
            raise ValueError("channel capacity must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        if flush_interval <= 0:
            raise ValueError("flush interval must be positive")
        if transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {transport!r}; "
                f"expected one of {TRANSPORT_KINDS}"
            )
        self.transport = transport
        self.workers = workers
        self.capacity = capacity
        self.batch_size = min(batch_size, capacity)
        self.flush_interval = flush_interval
        self.policy = policy or RobustnessPolicy()
        self.fault_plan = (
            fault_plan.clamped_to(self.policy)
            if fault_plan is not None
            else None
        )
        self.throttle_config = throttle if throttle is not None else ThrottleConfig()
        self.checkpoint_config = checkpoints
        self.channel_chaos = channel_chaos
        self.trace_config = trace
        self.live_config = live
        self._start_method = start_method
        self.external_runtime = runtime
        self.metrics = EngineMetrics()
        self.checkpoint_manager: Optional[CheckpointManager] = None
        #: The last run's live monitor (None when ``live`` is off) and the
        #: port its HTTP endpoint bound (None when ``live.serve`` is off).
        self.live_monitor: Optional[LiveMonitor] = None
        self.live_server_port: Optional[int] = None

    # -- public API -------------------------------------------------------------

    def run(
        self,
        spec: PipelineSpec,
        resume_from: Union[Checkpoint, str, None] = None,
    ) -> EngineResult:
        checkpoint = self._resolve_resume(spec, resume_from)
        start = checkpoint.next_commit if checkpoint is not None else 0
        self.metrics = EngineMetrics(
            workers=self.workers, capacity=self.capacity,
            iterations=spec.iterations, batch_size=self.batch_size,
        )
        if checkpoint is not None:
            self.metrics.resumed_from = start
        self.checkpoint_manager = (
            CheckpointManager(
                self.checkpoint_config,
                spec_fingerprint(spec),
                next_index=(checkpoint.index + 1 if checkpoint else 0),
            )
            if self.checkpoint_config is not None
            else None
        )
        if spec.iterations == 0 or start >= spec.iterations:
            # Nothing (left) to execute; finalize the restored prefix.
            if checkpoint is not None:
                accumulator = checkpoint.restore_accumulator()
                state = checkpoint.restore_store().architectural_state()
            else:
                accumulator = spec.init()
                state = {}
            return EngineResult(spec.finalize(accumulator), self.metrics, state)
        started = time.monotonic()
        result = self._run_pipeline(spec, start, checkpoint)
        self.metrics.wall_seconds = time.monotonic() - started
        self._attach_bottleneck_estimate()
        return result

    def _attach_bottleneck_estimate(self) -> None:
        """Every run ships a bottleneck verdict, trace or not: the coarse
        metrics-only estimate here; callers that recorded a trace replace
        it with the critical-path analysis (``repro.obs.analyze``)."""
        try:
            from repro.obs.analyze import estimate_bottleneck

            self.metrics.bottleneck = estimate_bottleneck(self.metrics)
        except Exception:
            # Diagnosis must never take down a successful run.
            self.metrics.bottleneck = None

    def _resolve_resume(
        self, spec: PipelineSpec, resume_from: Union[Checkpoint, str, None]
    ) -> Optional[Checkpoint]:
        if resume_from is None:
            return None
        checkpoint = (
            Checkpoint.load(resume_from)
            if isinstance(resume_from, str)
            else resume_from
        )
        expected = spec_fingerprint(spec)
        if checkpoint.fingerprint != expected:
            raise CheckpointError(
                f"checkpoint fingerprint {checkpoint.fingerprint!r} does not "
                f"match spec {expected!r}; refusing to resume"
            )
        return checkpoint

    # -- the committer loop -----------------------------------------------------

    def _run_pipeline(
        self,
        spec: PipelineSpec,
        start: int,
        resume_checkpoint: Optional[Checkpoint],
    ) -> EngineResult:
        policy = self.policy
        metrics = self.metrics
        manager = self.checkpoint_manager
        rt = self.external_runtime
        ctx = (
            multiprocessing.get_context(self._start_method)
            if self._start_method
            else multiprocessing.get_context()
        )
        threaded = self.transport == "thread" and rt is None
        if rt is not None:
            # Pool mode: the lease supplies channels, shutdown, and shared
            # values — all created once at pool start and reused per job.
            work = rt.work
            done = rt.done
            shutdown = rt.shutdown
            child_shutdown = shutdown
        else:
            work = ProcessChannel(
                self.capacity, name="work", ctx=ctx, chaos=self.channel_chaos,
                batch_size=self.batch_size, flush_interval=self.flush_interval,
                transport=self.transport,
            )
            # Worst-case in-flight done traffic: a claim and a result for
            # every item in the transport plus every item held in a worker's
            # chunk, plus one "stopped" per worker.
            done = ProcessChannel(
                2 * (self.capacity + self.workers * self.batch_size)
                + self.workers + 8,
                name="done", ctx=ctx,
                batch_size=self.batch_size, flush_interval=self.flush_interval,
                transport=self.transport,
            )
            shutdown = ctx.Event()
            # Children see parent death as shutdown, so a SIGKILLed engine
            # cannot strand orphans spinning on channel credit — and the
            # last orphan's exit is what lets the resource tracker unlink
            # any shm segments the run mapped.
            child_shutdown = (
                shutdown if threaded
                else ShutdownGuard(shutdown, os.getpid())
            )
        metrics.transport = work.transport_kind
        # The committer's own spool: claims, commits, conflicts, robustness
        # events, TASK_C spans, and its done-channel get waits.
        tracer = open_tracer(self.trace_config, "committer")
        done.tracer = tracer
        if resume_checkpoint is not None:
            store = resume_checkpoint.restore_store()
            accumulator = resume_checkpoint.restore_accumulator()
        else:
            store = CommittedStore(spec.shared_state)
            accumulator = spec.init()

        # Adaptive speculation throttling: the committer is the controller;
        # workers observe the watermark/window pair through shared memory.
        # Pool mode may supply a persistent (per-tenant) controller so one
        # tenant's storm carries a shrunk window into its next lease.
        if rt is not None:
            throttle = rt.job_throttle
            watermark_value = rt.watermark
            window_value = rt.window
            watermark_value.value = start
            window_value.value = (
                throttle.window if throttle else _UNTHROTTLED_WINDOW
            )
        else:
            throttle = (
                SpeculationThrottle(
                    self.throttle_config,
                    max_window_for(
                        self.workers, self.capacity, self.batch_size
                    ),
                )
                if self.throttle_config.enabled
                else None
            )
            watermark_value = ctx.Value("l", start)
            window_value = ctx.Value(
                "l", throttle.window if throttle else _UNTHROTTLED_WINDOW
            )

        # Live telemetry: the shared-memory registry must exist before any
        # child is spawned (the shared arrays travel through process args).
        # Pool mode inherits the slot's registry — reset by the pool before
        # the lease, already mapped in every pool worker.
        live_cfg = self.live_config
        live_abort = threading.Event()
        registry: Optional[MetricsRegistry] = None
        monitor: Optional[LiveMonitor] = None
        server: Optional[MetricsServer] = None
        if rt is not None:
            registry = rt.registry
        elif live_cfg is not None:
            registry = MetricsRegistry.create(
                ctx, writers_for(self.workers, policy.max_respawns)
            )
        if registry is not None:
            registry.set_gauge("iterations", spec.iterations)
            registry.set_gauge("watermark", start)
            registry.set_gauge("window", window_value.value)
            registry.set_gauge("workers_alive", self.workers)

        if rt is not None:
            producer = rt.start_producer(
                spec, start=start, batch_size=self.batch_size,
                fault_plan=self.fault_plan,
            )
        else:
            if threaded:
                # Thread stages share the channel objects; each gets its
                # own per-caller view so send buffers never interleave.
                producer = _ThreadHandle(
                    producer_main,
                    (work.for_caller(), spec.iterations, spec.produce,
                     self.fault_plan, child_shutdown, start, self.batch_size,
                     self.trace_config, registry, WRITER_PRODUCER, True,
                     raise_hard_exit),
                    name="exec-A",
                )
            else:
                producer = ctx.Process(
                    target=producer_main,
                    args=(work, spec.iterations, spec.produce,
                          self.fault_plan, child_shutdown, start,
                          self.batch_size, self.trace_config, registry,
                          WRITER_PRODUCER),
                    name="exec-A",
                    daemon=True,
                )
            producer.start()

        processes: Dict[int, Any] = {}
        next_worker_id = 0

        def spawn_worker() -> int:
            nonlocal next_worker_id
            if rt is not None:
                wid, proc = rt.respawn()
                processes[wid] = proc
                return wid
            wid = next_worker_id
            next_worker_id += 1
            # Every worker that ever exists gets its own counter row;
            # clamp defensively so an overrun aliases the last row instead
            # of corrupting foreign memory.
            row = WRITER_WORKER0 + wid
            if registry is not None and row >= registry.writers:
                row = registry.writers - 1
            if threaded:
                proc = _ThreadHandle(
                    worker_main,
                    (wid, work.for_caller(), done.for_caller(), spec.work,
                     spec.speculative, store.snapshot(), self.fault_plan,
                     child_shutdown, watermark_value, window_value,
                     self.batch_size, self.trace_config, registry, row,
                     raise_hard_exit),
                    name=f"exec-B{wid}",
                )
            else:
                proc = ctx.Process(
                    target=worker_main,
                    args=(wid, work, done, spec.work, spec.speculative,
                          store.snapshot(), self.fault_plan, child_shutdown,
                          watermark_value, window_value, self.batch_size,
                          self.trace_config, registry, row),
                    name=f"exec-B{wid}",
                    daemon=True,
                )
            proc.start()
            processes[wid] = proc
            return wid

        if rt is not None:
            processes.update(rt.workers())
        else:
            for _ in range(self.workers):
                spawn_worker()

        if registry is not None and live_cfg is not None:
            monitor = LiveMonitor(
                registry, live_cfg,
                capacity=self.capacity,
                iterations=spec.iterations,
                policy=policy,
                channels=(work, done),
                on_abort=live_abort.set,
            )
            monitor.start()
            self.live_monitor = monitor
            if live_cfg.serve is not None:
                server = MetricsServer(monitor, port=live_cfg.serve).start()
                self.live_server_port = server.port

        def stop_live() -> None:
            """Tear down the telemetry plane (idempotent): final sample,
            then the watchdog's verdict lands on the run's metrics."""
            nonlocal server
            if server is not None:
                server.stop()
                server = None
            if monitor is not None:
                monitor.stop()
                metrics.watchdog = monitor.watchdog.summary()

        # Committer state.  ``inflight_values`` holds each claimed
        # iteration's phase-A value until commit, so any lost task can be
        # re-executed serially.
        inflight_values: Dict[int, Any] = {}
        claim_info: Dict[int, Tuple[int, float]] = {}
        claim_arrival_ns: Dict[int, int] = {}
        worker_claims: Dict[int, Set[int]] = {}
        pending: Dict[int, Tuple[Any, dict, dict]] = {}
        serial_needed: Set[int] = set()
        next_commit = start
        respawns_left = policy.max_respawns
        producer_failed = False
        last_activity = time.monotonic()

        def respawn(wid: int, reason: str) -> None:
            nonlocal respawns_left
            respawns_left -= 1
            metrics.respawns += 1
            if registry is not None:
                registry.add(WRITER_COMMITTER, "respawns")
            new_wid = spawn_worker()
            logger.info(
                "respawned worker %d (replacing %d after %s, %d respawns "
                "left)", new_wid, wid, reason, respawns_left,
            )
            if tracer is not None:
                tracer.instant(EventKind.RESPAWN, arg=new_wid, arg2=wid)

        def serial_reexecute(i: int) -> Any:
            """Misspeculation-as-re-execution: run task *i* on live state."""
            value = inflight_values[i]
            t0_ns = now_ns()
            if spec.speculative:
                buffer = WriteBuffer(store.snapshot())
                result = spec.work(i, value, buffer)
                store.apply(buffer.writes)
            else:
                result = spec.work(i, value)
            t1_ns = now_ns()
            elapsed = (t1_ns - t0_ns) * 1e-9
            metrics.stage_seconds["B"] += elapsed
            metrics.serial_reexecutions += 1
            metrics.record_latency("serial_reexec", elapsed)
            if registry is not None:
                registry.add(WRITER_COMMITTER, "serial_reexec")
            if tracer is not None:
                tracer.record(EventKind.SERIAL_REEXEC, t0_ns, t1_ns, arg=i)
            return result

        def commit(i: int, result: Any, misspeculated: bool = False) -> None:
            nonlocal next_commit, last_activity
            t0_ns = now_ns()
            spec.commit(i, result, accumulator)
            # One clock pair feeds stage_seconds, the latency histogram,
            # commit lag, *and* the trace span — tracing adds no clock calls.
            commit_ns = now_ns()
            elapsed = (commit_ns - t0_ns) * 1e-9
            metrics.stage_seconds["C"] += elapsed
            metrics.record_latency("task_c", elapsed)
            metrics.commits += 1
            if i == next_commit:
                metrics.in_order_commits += 1
            next_commit = i + 1
            watermark_value.value = next_commit
            if registry is not None:
                registry.add(WRITER_COMMITTER, "committed")
                registry.set_gauge("watermark", next_commit)
            inflight_values.pop(i, None)
            info = claim_info.pop(i, None)
            if info is not None:
                worker_claims.get(info[0], set()).discard(i)
            serial_needed.discard(i)
            last_activity = time.monotonic()
            claimed_ns = claim_arrival_ns.pop(i, None)
            if claimed_ns is not None and commit_ns >= claimed_ns:
                lag_seconds = (commit_ns - claimed_ns) / 1e9
                metrics.record_latency("commit_lag", lag_seconds)
                if registry is not None:
                    registry.observe(
                        WRITER_COMMITTER, "commit_lag_seconds", lag_seconds
                    )
            if tracer is not None:
                # The span's end *is* the commit point and arg2 carries the
                # misspeculation flag; the merger synthesizes the COMMIT
                # instant from it, halving committer record volume.
                tracer.record(
                    EventKind.TASK_C, t0_ns, commit_ns, arg=i,
                    arg2=1 if misspeculated else 0,
                )
            if throttle is not None:
                new_window = throttle.record(misspeculated)
                if new_window is not None:
                    shrink = new_window < window_value.value
                    window_value.value = new_window
                    if registry is not None:
                        registry.set_gauge("window", new_window)
                    logger.debug(
                        "throttle %s: speculative window now %d",
                        "shrink" if shrink else "grow", new_window,
                    )
                    if tracer is not None:
                        tracer.instant(
                            EventKind.THROTTLE, arg=new_window,
                            detail=0 if shrink else 1,
                        )
            if manager is not None:
                taken_before = manager.taken
                manager.maybe(next_commit, store, accumulator, metrics)
                metrics.checkpoints_taken = manager.taken
                if manager.taken > taken_before:
                    if registry is not None:
                        registry.add(
                            WRITER_COMMITTER, "checkpoints",
                            manager.taken - taken_before,
                        )
                    logger.info(
                        "checkpoint %d taken at commit watermark %d",
                        manager.taken, next_commit,
                    )
                    if tracer is not None:
                        tracer.instant(EventKind.CHECKPOINT, arg=next_commit)

        def advance_commits() -> None:
            while next_commit < spec.iterations:
                i = next_commit
                if i in pending:
                    result, reads, writes = pending.pop(i)
                    stale = store.validate(reads) if spec.speculative else []
                    if stale:
                        metrics.conflicts += 1
                        if registry is not None:
                            registry.add(WRITER_COMMITTER, "conflicts")
                        if tracer is not None:
                            tracer.instant(EventKind.CONFLICT, arg=i)
                        commit(i, serial_reexecute(i), misspeculated=True)
                    else:
                        store.apply(writes)
                        commit(i, result)
                elif i in serial_needed and i in inflight_values:
                    commit(i, serial_reexecute(i), misspeculated=True)
                else:
                    return

        def handle_lost_worker(wid: int) -> None:
            """Route a dead/hung worker's unresolved claims to serial retry."""
            for i in worker_claims.pop(wid, set()):
                info = claim_info.get(i)
                if info is not None and info[0] != wid:
                    continue  # re-claimed by a live worker since
                if i >= next_commit and i not in pending:
                    serial_needed.add(i)
                    metrics.retries += 1

        def check_health() -> None:
            nonlocal producer_failed, respawns_left, last_activity
            now = time.monotonic()
            # A chunk executes serially within its worker, so only each
            # worker's *oldest* unresolved claim can actually be running;
            # younger chunk-mates are queued behind it, not hung.
            oldest_claim: Dict[int, int] = {}
            for i, (wid, _) in claim_info.items():
                if i < next_commit or i in pending or i in serial_needed:
                    continue
                if wid not in oldest_claim or i < oldest_claim[wid]:
                    oldest_claim[wid] = i
            # Hung tasks: claimed long ago by a still-live worker.
            for i, (wid, claimed_at) in list(claim_info.items()):
                if i < next_commit or i in pending or i in serial_needed:
                    continue
                proc = processes.get(wid)
                if proc is None or not proc.is_alive():
                    continue  # crash handling below covers dead workers
                if i - next_commit >= window_value.value:
                    # Throttle-gated, not hung: the worker is deliberately
                    # waiting for the window.  Refresh its claim clock so it
                    # gets a full timeout once it becomes eligible.
                    claim_info[i] = (wid, now)
                    continue
                if i != oldest_claim.get(wid):
                    claim_info[i] = (wid, now)  # queued behind a chunk-mate
                    continue
                if now - claimed_at > policy.task_timeout:
                    metrics.worker_timeouts += 1
                    if registry is not None:
                        registry.add(WRITER_COMMITTER, "worker_timeouts")
                    logger.warning(
                        "worker %d hung on iteration %d for more than "
                        "%.1fs; terminating", wid, i, policy.task_timeout,
                    )
                    if tracer is not None:
                        tracer.instant(
                            EventKind.WORKER_TIMEOUT, arg=i, arg2=wid
                        )
                    proc.terminate()
                    proc.join(policy.join_timeout)
                    processes[wid] = None
                    handle_lost_worker(wid)
                    if respawns_left > 0:
                        respawn(wid, "hang timeout")
                    last_activity = now
            # Crashed workers: exited nonzero (clean stop exits 0).
            for wid, proc in list(processes.items()):
                if proc is None or proc.is_alive():
                    continue
                proc.join()
                processes[wid] = None
                if proc.exitcode != 0:
                    metrics.worker_crashes += 1
                    if registry is not None:
                        registry.add(WRITER_COMMITTER, "worker_crashes")
                    logger.warning(
                        "worker %d crashed (exit code %s)",
                        wid, proc.exitcode,
                    )
                    if tracer is not None:
                        tracer.instant(
                            EventKind.WORKER_CRASH, arg=wid,
                            arg2=proc.exitcode or 0,
                        )
                    handle_lost_worker(wid)
                    if respawns_left > 0:
                        respawn(wid, f"crash (exit {proc.exitcode})")
                    last_activity = now
            # Producer death before dispatching everything.
            if (
                not producer_failed
                and not producer.is_alive()
                and producer.exitcode not in (0, None)
            ):
                producer_failed = True
                metrics.producer_crashed = True
                logger.error(
                    "producer crashed (exit code %s); degrading to "
                    "sequential", producer.exitcode,
                )
                if tracer is not None:
                    tracer.instant(
                        EventKind.PRODUCER_CRASH, arg2=producer.exitcode or 0
                    )

        def handle_message(message: tuple) -> None:
            nonlocal last_activity
            last_activity = time.monotonic()
            tag = message[0]
            if tag == "claim":
                _, wid, i, value, a_seconds = message
                if i < next_commit:
                    return  # late duplicate of an already-committed task
                inflight_values[i] = value
                claim_info[i] = (wid, last_activity)
                if i not in claim_arrival_ns:
                    # First claim wins: one timestamp serves both commit-lag
                    # accounting and the CLAIM trace record (re-claims after
                    # a crash hand-back keep the original arrival).
                    claim_ns = now_ns()
                    claim_arrival_ns[i] = claim_ns
                    if tracer is not None:
                        tracer.record(
                            EventKind.CLAIM, claim_ns, claim_ns,
                            arg=i, arg2=wid,
                        )
                worker_claims.setdefault(wid, set()).add(i)
                # A fresh claim transfers ownership: the live claimant will
                # deliver a result or fault (or fall to the hung-task
                # timeout), so a previously scheduled serial retry yields.
                serial_needed.discard(i)
                metrics.stage_seconds["A"] += a_seconds
                metrics.record_latency("task_a", a_seconds)
            elif tag == "result":
                _, wid, i, result, reads, writes, b_seconds = message
                if i < next_commit:
                    metrics.duplicates_dropped += 1
                    return
                if i != next_commit:
                    metrics.out_of_order_completions += 1
                if i in pending:
                    metrics.duplicates_dropped += 1
                    return
                pending[i] = (result, reads, writes)
                metrics.stage_seconds["B"] += b_seconds
                metrics.record_latency("task_b", b_seconds)
                metrics.worker_iterations[wid] = (
                    metrics.worker_iterations.get(wid, 0) + 1
                )
            elif tag == "fault":
                _, wid, i, fault_message = message
                metrics.soft_faults += 1
                if registry is not None:
                    registry.add(WRITER_COMMITTER, "soft_faults")
                logger.warning(
                    "worker %d reported soft fault on iteration %d: %s",
                    wid, i, fault_message,
                )
                if tracer is not None:
                    tracer.instant(EventKind.SOFT_FAULT, arg=i, arg2=wid)
                if i >= next_commit and i not in pending:
                    serial_needed.add(i)
                    metrics.retries += 1
            elif tag == "stopped":
                pass  # clean exit; health check sees exitcode 0

        # -- main loop ----------------------------------------------------------
        degraded = False
        try:
            while next_commit < spec.iterations:
                advance_commits()
                if next_commit >= spec.iterations:
                    break
                if rt is not None and rt.cancelled():
                    # Job cancellation (repro.service): stop committing and
                    # take the cooperative teardown path — the committed
                    # prefix stays valid, pool workers stay alive.
                    metrics.cancelled = True
                    logger.info(
                        "run cancelled at commit watermark %d", next_commit
                    )
                    break
                wait_started = time.monotonic()
                try:
                    message = done.get(timeout=policy.poll_interval)
                except ChannelTimeout:
                    pass
                else:
                    metrics.record_latency(
                        "queue_wait", time.monotonic() - wait_started
                    )
                    handle_message(message)
                    continue  # drain greedily before health checks
                work.sample_occupancy()
                done.sample_occupancy()
                check_health()
                live_workers = any(
                    proc is not None and proc.is_alive()
                    for proc in processes.values()
                )
                if registry is not None:
                    registry.set_gauge(
                        "workers_alive",
                        sum(
                            1 for proc in processes.values()
                            if proc is not None and proc.is_alive()
                        ),
                    )
                stalled = (
                    time.monotonic() - last_activity > policy.stall_timeout
                )
                if live_abort.is_set():
                    logger.warning(
                        "live watchdog requested abort at commit watermark "
                        "%d; taking the degradation path", next_commit,
                    )
                    degraded = True
                    break
                if producer_failed or not live_workers or stalled:
                    degraded = True
                    break
        except BaseException:
            # A committer-side crash (a commit callback raising, an
            # interrupt) must not leak the pipeline.  Children left alive
            # keep writing the channels' shared counters, and once this
            # frame unwinds the parent frees those counter blocks back to
            # the multiprocessing heap — where the *next* engine's channels
            # reuse them while the orphans still hold the same mapping,
            # silently corrupting a later run's metrics.  Kill and reap
            # everything, release the channels, then let the crash
            # propagate (the committer's spool is closed cleanly so a
            # post-mortem trace survives).
            shutdown.set()
            stop_live()  # before channel.close(): the final sample reads them
            self._halt(producer, processes)
            if rt is None:
                for channel in (work, done):
                    channel.close()
            done.tracer = None  # pool channels outlive the job
            if tracer is not None:
                tracer.close()
            raise
        finally:
            shutdown.set()

        # The telemetry plane stops here, not after teardown: on the
        # degradation path the sequential finisher bypasses the registry,
        # and a watchdog left running would misread that silence as a
        # stall.  The final sample captures the pipeline's true end state.
        stop_live()

        if degraded:
            logger.warning(
                "degrading to sequential execution at commit watermark %d",
                next_commit,
            )
            if tracer is not None:
                tracer.instant(EventKind.DEGRADE, arg=next_commit)
            self._degrade(
                spec, store, accumulator, next_commit, pending, producer,
                processes,
            )
        else:
            self._teardown(producer, processes, done)

        if throttle is not None:
            metrics.throttle_shrinks = throttle.shrinks
            metrics.throttle_grows = throttle.grows
            metrics.min_window = throttle.min_window_seen
            metrics.final_window = throttle.window
        for channel in (work, done):
            metrics.channel_stats[channel.name] = channel.occupancy_stats()
            if rt is None:
                channel.close()  # pool channels outlive the job
        done.tracer = None
        if tracer is not None:
            tracer.close()
        return EngineResult(
            spec.finalize(accumulator),
            metrics,
            store.architectural_state(),
            checkpoints=list(manager.checkpoints) if manager else [],
        )

    # -- failure paths ----------------------------------------------------------

    def _degrade(
        self,
        spec: PipelineSpec,
        store: CommittedStore,
        accumulator: Any,
        next_commit: int,
        pending: Dict[int, Tuple[Any, dict, dict]],
        producer,
        processes,
    ) -> None:
        """Graceful degradation: finish the run sequentially, in-process.

        Phase A is replayed from iteration 0 on the engine's own (pristine,
        never-called) copy of ``produce`` — workload determinism guarantees
        identical values — but only uncommitted iterations execute B and C.
        Already-validated worker results in ``pending`` are reused, and the
        committed prefix keeps checkpointing, so even a degraded run can be
        resumed incrementally if it is interrupted.
        """
        metrics = self.metrics
        manager = self.checkpoint_manager
        metrics.degraded_to_sequential = True
        if self.external_runtime is not None:
            # The pool replaces killed leased workers on release; the
            # sequential finish below is identical in both modes.
            self.external_runtime.halt(
                producer, processes, self.policy.join_timeout
            )
        else:
            for proc in [producer] + list(processes.values()):
                if proc is not None and proc.is_alive():
                    proc.terminate()
            for proc in [producer] + list(processes.values()):
                if proc is not None:
                    proc.join(self.policy.join_timeout)

        def committed(i: int) -> None:
            metrics.commits += 1
            metrics.in_order_commits += 1
            if manager is not None:
                manager.maybe(i + 1, store, accumulator, metrics)
                metrics.checkpoints_taken = manager.taken

        for i in range(spec.iterations):
            value = spec.produce(i)  # replay for phase-A state evolution
            if i < next_commit:
                continue
            if i in pending:
                result, reads, writes = pending.pop(i)
                stale = store.validate(reads) if spec.speculative else []
                if not stale:
                    store.apply(writes)
                    spec.commit(i, result, accumulator)
                    committed(i)
                    continue
                metrics.conflicts += 1
            if spec.speculative:
                buffer = WriteBuffer(store.snapshot())
                result = spec.work(i, value, buffer)
                store.apply(buffer.writes)
            else:
                result = spec.work(i, value)
            metrics.serial_reexecutions += 1
            spec.commit(i, result, accumulator)
            committed(i)

    def _halt(self, producer, processes) -> None:
        """Emergency stop: terminate and reap every child, unconditionally.

        The crashed-committer path.  Cooperative shutdown is not enough
        here: with no consumer left a worker can be blocked mid-put
        (credit starvation polls forever), so the children are killed
        outright and joined — nothing may outlive the run and keep
        touching its shared state.
        """
        if self.external_runtime is not None:
            self.external_runtime.halt(
                producer, processes, self.policy.join_timeout
            )
            return
        procs = [producer] + list(processes.values())
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc is not None:
                proc.join(self.policy.join_timeout)
                if proc.is_alive():
                    proc.kill()
                    proc.join(self.policy.join_timeout)

    def _teardown(self, producer, processes, done: ProcessChannel) -> None:
        """Normal completion: let children observe shutdown and exit."""
        if self.external_runtime is not None:
            # Pool workers observe the slot shutdown event, flush, send
            # their release, and go idle — they are not joined or killed.
            self.external_runtime.teardown(
                producer, processes, done, self.policy.join_timeout
            )
            return
        deadline = time.monotonic() + self.policy.join_timeout
        procs = [producer] + [p for p in processes.values() if p is not None]
        while time.monotonic() < deadline:
            # Keep draining so a worker blocked on a full done channel can
            # finish its put and see the shutdown event.
            done.drain()
            if not any(proc.is_alive() for proc in procs):
                break
            time.sleep(0.01)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(self.policy.join_timeout)


# -- TaskGraph replay (simulated-vs-measured calibration) ------------------------


def _busy_wait(seconds: float) -> None:
    """Burn CPU for ``seconds`` — abstract work units made physical."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1


class _ReplayProduce:
    """Phase-A replay: burn the A cost, hand the B cost downstream."""

    def __init__(self, a_costs: List[float], b_costs: List[float]) -> None:
        self.a_costs = a_costs
        self.b_costs = b_costs

    def __call__(self, i: int) -> float:
        _busy_wait(self.a_costs[i])
        return self.b_costs[i]


class _ReplayWork:
    def __call__(self, i: int, b_cost: float) -> int:
        _busy_wait(b_cost)
        return i


def spec_from_task_graph(
    graph: TaskGraph, seconds_per_unit: float = 1e-6
) -> PipelineSpec:
    """Replay a simulator :class:`TaskGraph` as real busy-work.

    Each iteration's per-phase abstract costs become calibrated CPU burns,
    so the engine's measured wall clock can be put next to the simulator's
    predicted makespan for the same graph — the calibration bridge.
    """
    iterations = graph.iterations()
    a_costs = [0.0] * iterations
    b_costs = [0.0] * iterations
    c_costs = [0.0] * iterations
    for task in graph.tasks:
        costs = {Phase.A: a_costs, Phase.B: b_costs, Phase.C: c_costs}[task.phase]
        costs[task.iteration] += task.cost * seconds_per_unit

    def commit(i: int, result: int, acc: dict) -> None:
        _busy_wait(c_costs[i])
        acc["committed"] = acc.get("committed", 0) + 1

    return PipelineSpec(
        iterations=iterations,
        produce=_ReplayProduce(a_costs, b_costs),
        work=_ReplayWork(),
        commit=commit,
        finalize=lambda acc: acc.get("committed", 0),
    )
