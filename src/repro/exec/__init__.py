"""repro.exec — the real multiprocess pipeline execution engine.

The simulator (:mod:`repro.core.simulator`) predicts; the threaded runtime
(:mod:`repro.dswp.runtime`) demonstrates correctness under the GIL; this
package *executes*: the paper's A/B/C pipeline on real OS processes with
bounded full/empty-blocking channels, speculative write buffers with
commit-time validation and rollback, bounded crash/hang recovery with
graceful degradation to sequential execution, and per-run metrics that
calibrate the simulator against measured wall clock.

- :mod:`repro.exec.engine`   — :class:`ExecutionEngine`, :class:`PipelineSpec`,
  the sequential reference, and TaskGraph replay;
- :mod:`repro.exec.workers`  — producer/worker process entry points;
- :mod:`repro.exec.channels` — bounded blocking inter-process channels;
- :mod:`repro.exec.rollback` — write buffers, version validation, commit;
- :mod:`repro.exec.faults`   — fault injection and the robustness policy;
- :mod:`repro.exec.metrics`  — the observability record of one run.
"""

from repro.exec.channels import (
    ChannelChaos,
    ChannelTimeout,
    ProcessChannel,
    decode_frame,
    encode_frame,
)
from repro.exec.engine import (
    EngineResult,
    ExecutionEngine,
    PipelineSpec,
    run_sequential,
    spec_from_task_graph,
)
from repro.exec.faults import FaultPlan, InjectedFault, RobustnessPolicy
from repro.exec.metrics import EngineMetrics
from repro.exec.rollback import CommittedStore, WriteBuffer

__all__ = [
    "ChannelChaos",
    "ChannelTimeout",
    "CommittedStore",
    "decode_frame",
    "encode_frame",
    "EngineMetrics",
    "EngineResult",
    "ExecutionEngine",
    "FaultPlan",
    "InjectedFault",
    "PipelineSpec",
    "ProcessChannel",
    "RobustnessPolicy",
    "WriteBuffer",
    "run_sequential",
    "spec_from_task_graph",
]
