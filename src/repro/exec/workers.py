"""Process entry points for the pipeline stages.

The engine runs phase A in one producer process and phase B in N replicated
worker processes; phase C (the committer) stays in the engine's own process
so commits can touch the authoritative store and the user's accumulator
without cross-process state.

Message protocol (all on the ``done`` channel, tagged tuples):

``("claim", wid, i, value, a_seconds)``
    A worker announces it dequeued iteration *i* **before** executing it,
    carrying the phase-A value.  The committer keeps the value until commit
    so a task lost to a crash, hang, or soft fault can be re-executed
    serially without re-running the (stateful, sequential) phase A.
``("result", wid, i, result, reads, writes, b_seconds)``
    The speculative outcome: read-set versions and buffered writes for
    commit-time validation (empty for non-speculative specs).
``("fault", wid, i, message)``
    A soft fault: the task raised; the worker survives and the committer
    re-executes the claimed task serially.
``("stopped", wid)``
    Clean worker exit (shutdown event observed).

Per-producer FIFO ordering of :class:`multiprocessing.Queue` guarantees a
claim is visible before its result or fault.

Speculation throttling: the committer publishes its commit watermark and
the controller's current window in shared memory; a worker holding
iteration ``i`` waits (after claiming, so the committer can still recover
the value) while ``i - watermark >= window``.  The committer exempts gated
claims from the hung-task timeout.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Optional

from repro.exec.channels import ChannelTimeout, ProcessChannel, STOP
from repro.exec.faults import FaultPlan, InjectedFault
from repro.exec.rollback import Snapshot, WriteBuffer

#: How often an idle stage re-checks the shutdown event (seconds).
_IDLE_POLL = 0.2
#: How often a throttle-gated worker re-checks the commit watermark.
_GATE_POLL = 0.005


def producer_main(
    work: ProcessChannel,
    iterations: int,
    produce: Callable[[int], Any],
    fault_plan: Optional[FaultPlan],
    shutdown,
    start: int = 0,
) -> None:
    """Phase A: run ``produce`` per iteration, push into the work channel.

    On resume (``start > 0``) every iteration is still *produced* — stateful
    producers must evolve deterministically — but only iterations at or past
    ``start`` are dispatched, and injections keyed below ``start`` are
    treated as already spent.
    """
    for i in range(iterations):
        if (
            fault_plan is not None
            and fault_plan.producer_crash_at == i
            and i >= start
        ):
            work.flush_and_close()
            os._exit(3)
        started = time.monotonic()
        value = produce(i)
        elapsed = time.monotonic() - started
        if i < start:
            continue
        while True:
            if shutdown.is_set():
                return
            try:
                work.put((i, value, elapsed), timeout=_IDLE_POLL)
                break
            except ChannelTimeout:
                continue  # full channel: keep blocking, re-check shutdown
    work.flush_and_close()


def worker_main(
    worker_id: int,
    work: ProcessChannel,
    done: ProcessChannel,
    work_fn: Callable,
    speculative: bool,
    snapshot: Snapshot,
    fault_plan: Optional[FaultPlan],
    shutdown,
    watermark=None,
    window=None,
) -> None:
    """Phase B replica: claim, gate on the throttle window, execute
    speculatively, report."""
    while True:
        try:
            item = work.get(timeout=_IDLE_POLL)
        except ChannelTimeout:
            if shutdown.is_set():
                done.put(("stopped", worker_id))
                return
            continue
        except (EOFError, OSError):
            # The producer's end of the channel is gone; the engine will
            # finish sequentially.
            return
        if item == STOP:
            done.put(("stopped", worker_id))
            return

        i, value, a_seconds = item
        done.put(("claim", worker_id, i, value, a_seconds))

        # Throttle gate: hold execution until iteration i enters the
        # speculative window.  The claim above lets the committer recover
        # the value even if this process dies while gated.
        if watermark is not None and window is not None:
            while (
                i - watermark.value >= window.value
                and not shutdown.is_set()
            ):
                time.sleep(_GATE_POLL)

        if fault_plan is not None:
            if i in fault_plan.crash_iterations:
                # A hard crash: no exception, no goodbye — only the exit
                # code.  Flush the claim first so the committer can retry.
                done.flush_and_close()
                os._exit(1)
            if i in fault_plan.hang_iterations:
                time.sleep(fault_plan.hang_seconds)

        started = time.monotonic()
        try:
            if fault_plan is not None and (
                i in fault_plan.error_iterations
                or (i in fault_plan.conflict_iterations and not speculative)
            ):
                # Forced conflicts degenerate to soft faults when there is
                # no read set to poison: the serial-retry path still runs.
                raise InjectedFault(f"injected fault at iteration {i}")
            if speculative:
                buffer = WriteBuffer(snapshot)
                result = work_fn(i, value, buffer)
                reads, writes = buffer.reads, buffer.writes
            else:
                result = work_fn(i, value)
                reads, writes = {}, {}
        except Exception as error:
            done.put(("fault", worker_id, i, repr(error)))
            continue
        elapsed = time.monotonic() - started

        if fault_plan is not None:
            if i in fault_plan.conflict_iterations and speculative:
                # Forced misspeculation: report a read of a version that
                # can never validate, so the committer must roll back and
                # re-execute serially.
                reads = dict(reads)
                reads[("__chaos__", i)] = 0
            if i in fault_plan.latency_iterations:
                time.sleep(fault_plan.latency_seconds)
            if i in fault_plan.drop_result_iterations:
                continue  # the result message is lost on the wire
        message = ("result", worker_id, i, result, reads, writes, elapsed)
        done.put(message)
        if (
            fault_plan is not None
            and i in fault_plan.duplicate_result_iterations
        ):
            done.put(message)
