"""Process entry points for the pipeline stages.

The engine runs phase A in one producer process and phase B in N replicated
worker processes; phase C (the committer) stays in the engine's own process
so commits can touch the authoritative store and the user's accumulator
without cross-process state.

Message protocol (all on the ``done`` channel, tagged tuples):

``("claim", wid, i, value, a_seconds)``
    A worker announces it dequeued iteration *i* **before** executing it,
    carrying the phase-A value.  The committer keeps the value until commit
    so a task lost to a crash, hang, or soft fault can be re-executed
    serially without re-running the (stateful, sequential) phase A.
``("result", wid, i, result, reads, writes, b_seconds)``
    The speculative outcome: read-set versions and buffered writes for
    commit-time validation (empty for non-speculative specs).
``("fault", wid, i, message)``
    A soft fault: the task raised; the worker survives and the committer
    re-executes the claimed task serially.
``("stopped", wid)``
    Clean worker exit (shutdown event observed).

Per-producer FIFO ordering of :class:`multiprocessing.Queue` guarantees a
claim is visible before its result or fault; batched transport preserves
this (frames decode in order).

**Chunked dispatch (the fast path).**  The producer accumulates iterations
into *chunks* and dispatches each chunk as one frame — one pickle, one pipe
round-trip — with an adaptive chunk size: it starts at 1 so the pipeline
fills and workers ramp immediately, then doubles per dispatch toward
``max_chunk`` for steady-state amortization.  A worker claims its whole
chunk with one flushed frame of claim messages *before executing anything*
(crash recovery needs the claims on the wire), executes the chunk's items
in order, and batches its result messages, flushing at chunk end and before
any blocking wait.  A chunk executes serially within its worker, so the
committer exempts all but a worker's oldest unresolved claim from the
hung-task timeout.

Speculation throttling: the committer publishes its commit watermark and
the controller's current window in shared memory; a worker holding
iteration ``i`` waits (after claiming, so the committer can still recover
the value) while ``i - watermark >= window``.  Pending results are flushed
before the wait — gating must never hold back the very commits that would
open the window.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any, Callable, Optional

from repro.exec.channels import ChannelTimeout, ProcessChannel, STOP
from repro.exec.faults import FaultPlan, InjectedFault
from repro.exec.rollback import Snapshot, WriteBuffer
from repro.obs.clock import now_ns
from repro.obs.events import ChaosCode, EventKind, TraceConfig
from repro.obs.spool import open_tracer

logger = logging.getLogger(__name__)

#: How often an idle stage re-checks the shutdown event (seconds).
_IDLE_POLL = 0.2
#: How often a throttle-gated worker re-checks the commit watermark.
_GATE_POLL = 0.005


class HardExit(BaseException):
    """A fault injection's process death, expressed as control flow.

    Process-mode stages die with ``os._exit(code)``; thread-mode stages
    (the ``thread`` transport) cannot take the whole interpreter with
    them, so the engine injects a ``hard_exit`` that raises this instead —
    the thread handle catches it and records ``code`` as the exitcode,
    keeping the committer's crash accounting identical across transports.
    ``BaseException`` so no worker-side ``except Exception`` can swallow
    an injected death.
    """

    def __init__(self, code: int) -> None:
        super().__init__(f"hard exit with code {code}")
        self.code = code


def raise_hard_exit(code: int) -> None:
    """The thread-mode ``hard_exit``: unwind instead of killing the
    interpreter."""
    raise HardExit(code)


class ShutdownGuard:
    """The engine's shutdown event, plus parent-death detection.

    An engine parent killed with SIGKILL never sets the shutdown event,
    so its children would idle (or spin on channel credit) forever —
    keeping shared-memory segments mapped and therefore leaked.  Exposing
    parent death through ``is_set()`` makes every existing cooperative
    exit check double as the orphan reaper: once the last mapper exits,
    the resource tracker unlinks the segments even for SIGKILLed runs.
    Picklable (an event and a pid) so it rides the spawn args.
    """

    def __init__(self, shutdown, parent_pid: int) -> None:
        self._shutdown = shutdown
        self._parent = parent_pid

    def is_set(self) -> bool:
        return self._shutdown.is_set() or os.getppid() != self._parent

    def set(self) -> None:
        self._shutdown.set()


def _drain_flush(channel: ProcessChannel, shutdown) -> bool:
    """Blockingly flush everything pending, re-checking ``shutdown``
    between bounded attempts; False when interrupted by shutdown."""
    while channel.pending_items:
        try:
            channel.flush(timeout=_IDLE_POLL)
        except ChannelTimeout:
            if shutdown is not None and shutdown.is_set():
                return False
    return True


def producer_main(
    work: ProcessChannel,
    iterations: int,
    produce: Callable[[int], Any],
    fault_plan: Optional[FaultPlan],
    shutdown,
    start: int = 0,
    max_chunk: int = 1,
    trace: Optional[TraceConfig] = None,
    registry=None,
    writer: int = 0,
    close_channel: bool = True,
    hard_exit: Callable[[int], None] = os._exit,
) -> None:
    """Phase A: run ``produce`` per iteration, dispatch chunks downstream.

    On resume (``start > 0``) every iteration is still *produced* — stateful
    producers must evolve deterministically — but only iterations at or past
    ``start`` are dispatched, and injections keyed below ``start`` are
    treated as already spent.

    ``registry``/``writer`` (live telemetry, may be None/unused): the
    ``produced`` counter advances once per *flushed* chunk — the same
    batch-amortized discipline as the channel's credit counters.

    ``close_channel=False`` skips the final ``flush_and_close`` — required
    when the channel outlives this producer (the worker-pool runtime runs
    phase A as a thread against a slot channel reused across jobs).
    """
    tracer = open_tracer(trace, "producer")
    work.tracer = tracer
    chunk_target = 1
    staged = 0  # dispatched items not yet counted into the registry

    def count_staged() -> None:
        nonlocal staged
        if registry is not None and staged:
            registry.add(writer, "produced", staged)
        staged = 0

    try:
        for i in range(iterations):
            if (
                fault_plan is not None
                and fault_plan.producer_crash_at == i
                and i >= start
            ):
                # Crash *before dispatching* iteration i: everything produced
                # so far must still reach the workers.
                logger.info("injected producer crash before iteration %d", i)
                _drain_flush(work, shutdown)
                work.flush_and_close()
                count_staged()
                if registry is not None:
                    registry.add(writer, "chaos_injections")
                if tracer is not None:
                    tracer.instant(
                        EventKind.CHAOS, arg=i, detail=int(ChaosCode.CRASH)
                    )
                    tracer.flush()
                hard_exit(3)
            # One clock pair serves both the metrics (a_seconds) and the
            # trace span — tracing adds zero clock calls on this path.
            t0_ns = now_ns()
            value = produce(i)
            t1_ns = now_ns()
            elapsed = (t1_ns - t0_ns) * 1e-9
            if tracer is not None and i >= start:
                tracer.record(EventKind.TASK_A, t0_ns, t1_ns, arg=i)
            if i < start:
                continue
            work.put_buffered((i, value, elapsed))
            staged += 1
            if work.pending_items >= chunk_target or work.flush_due():
                if not _drain_flush(work, shutdown):
                    return
                count_staged()
                chunk_target = min(max_chunk, chunk_target * 2)
        if not _drain_flush(work, shutdown):
            return
        count_staged()
        if close_channel:
            work.flush_and_close()
    finally:
        if tracer is not None:
            tracer.close()


def worker_main(
    worker_id: int,
    work: ProcessChannel,
    done: ProcessChannel,
    work_fn: Callable,
    speculative: bool,
    snapshot: Snapshot,
    fault_plan: Optional[FaultPlan],
    shutdown,
    watermark=None,
    window=None,
    max_chunk: int = 1,
    trace: Optional[TraceConfig] = None,
    registry=None,
    writer: int = 0,
    hard_exit: Callable[[int], None] = os._exit,
) -> None:
    """Phase B replica: claim a chunk, gate on the throttle window, execute
    speculatively, report in batched frames.

    ``registry``/``writer`` (live telemetry, may be None/unused): this
    worker's private counter row — ``claimed`` advances once per chunk,
    ``executed`` and the ``task_b_seconds`` histogram once per task.
    """
    tracer = open_tracer(trace, f"worker-{worker_id}")
    work.tracer = tracer
    done.tracer = tracer

    def stop() -> None:
        # Buffer (never blocks), then a bounded flush: the committer may
        # already be gone, and a goodbye must not wedge the exit.
        done.put_buffered(("stopped", worker_id))
        try:
            done.flush(timeout=1.0)
        except ChannelTimeout:
            pass

    try:
        _worker_loop(
            worker_id, work, done, work_fn, speculative, snapshot,
            fault_plan, shutdown, watermark, window, max_chunk, stop, tracer,
            registry, writer, hard_exit,
        )
    finally:
        if tracer is not None:
            tracer.close()


def _worker_loop(
    worker_id: int,
    work: ProcessChannel,
    done: ProcessChannel,
    work_fn: Callable,
    speculative: bool,
    snapshot: Snapshot,
    fault_plan: Optional[FaultPlan],
    shutdown,
    watermark,
    window,
    max_chunk: int,
    stop: Callable[[], None],
    tracer,
    registry=None,
    writer: int = 0,
    hard_exit: Callable[[int], None] = os._exit,
) -> None:
    while True:
        _drain_flush(done, shutdown)  # bound result latency before blocking
        try:
            items = work.get_many(max_chunk, timeout=_IDLE_POLL)
        except ChannelTimeout:
            if shutdown.is_set():
                stop()
                return
            continue
        except (EOFError, OSError):
            # The producer's end of the channel is gone; the engine will
            # finish sequentially.
            return
        if items[0] == STOP:
            stop()
            return

        # Claim the whole chunk up front and *flush*: the committer holds
        # each value until commit, so any item this process loses to a
        # crash, hang, or soft fault can be re-executed serially.
        for i, value, a_seconds in items:
            done.put_buffered(("claim", worker_id, i, value, a_seconds))
        if not _drain_flush(done, shutdown):
            return  # shutdown mid-claim: nothing executed, nothing lost
        if registry is not None:
            registry.add(writer, "claimed", len(items))

        for i, value, a_seconds in items:
            # Throttle gate: hold execution until iteration i enters the
            # speculative window.  Flush first — buffered results feed the
            # very commits that advance the watermark.
            if watermark is not None and window is not None:
                if i - watermark.value >= window.value:
                    gate_t0 = now_ns()
                    _drain_flush(done, shutdown)
                    while (
                        i - watermark.value >= window.value
                        and not shutdown.is_set()
                    ):
                        time.sleep(_GATE_POLL)
                    if tracer is not None:
                        tracer.span(
                            EventKind.GATE_WAIT, gate_t0, now_ns(),
                            arg=i, arg2=worker_id,
                        )

            # Begin marker *before* the injection checks: a task this
            # process never finishes (crash, hang-then-kill) leaves an
            # unmatched begin that the merger recovers as an aborted span.
            # Written only under an active fault plan — the one regime where
            # a process deliberately dies mid-task *and flushes first*, so
            # the marker can actually reach disk.  A real crash loses the
            # write buffer regardless, and unconditional begins would double
            # the worker's record volume for insurance the buffer cannot
            # honor.
            if tracer is not None and fault_plan is not None:
                tracer.instant(EventKind.TASK_B_BEGIN, arg=i, arg2=worker_id)

            if fault_plan is not None:
                if i in fault_plan.crash_iterations:
                    # A hard crash: no exception, no goodbye — only the exit
                    # code.  Hand the chunk-mates this process never reached
                    # back to the work channel so a live worker (with its
                    # per-iteration injections) picks them up; their claims
                    # are already on the wire, so the committer's serial
                    # retry still covers them if the hand-back is lost.
                    logger.info(
                        "injected crash in worker %d at iteration %d",
                        worker_id, i,
                    )
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    rest = [item for item in items if item[0] > i]
                    if rest:
                        work.chaos = None  # injections already applied
                        try:
                            work.put_many(rest, timeout=0.5)
                        except ChannelTimeout:
                            pass
                        # Joining the feeder thread is what actually pushes
                        # the hand-back onto the pipe before the hard exit.
                        work.flush_and_close(flush_timeout=0.5)
                    done.flush_and_close()
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.CRASH),
                        )
                        tracer.flush()
                    hard_exit(1)
                if i in fault_plan.hang_iterations:
                    logger.info(
                        "injected hang in worker %d at iteration %d "
                        "(%.3fs)", worker_id, i, fault_plan.hang_seconds,
                    )
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.HANG),
                        )
                        # A hung worker is killed, not asked: flush now so
                        # the injection survives the SIGTERM.
                        tracer.flush()
                    time.sleep(fault_plan.hang_seconds)

            t0_ns = now_ns()
            try:
                if fault_plan is not None and (
                    i in fault_plan.error_iterations
                    or (i in fault_plan.conflict_iterations and not speculative)
                ):
                    # Forced conflicts degenerate to soft faults when there
                    # is no read set to poison: the serial-retry path still
                    # runs.
                    logger.info(
                        "injected soft fault in worker %d at iteration %d",
                        worker_id, i,
                    )
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.SOFT_FAULT),
                        )
                    raise InjectedFault(f"injected fault at iteration {i}")
                if speculative:
                    buffer = WriteBuffer(snapshot)
                    result = work_fn(i, value, buffer)
                    reads, writes = buffer.reads, buffer.writes
                else:
                    result = work_fn(i, value)
                    reads, writes = {}, {}
            except Exception as error:
                # The task ran (and raised): record its span so the open
                # begin marker is matched — aborted spans mean the *process*
                # died mid-task, not that the task faulted.
                if tracer is not None:
                    tracer.record(
                        EventKind.TASK_B, t0_ns, now_ns(),
                        arg=i, arg2=worker_id,
                    )
                done.put(("fault", worker_id, i, repr(error)))
                continue
            # Same clock pair for b_seconds and the span (see producer).
            t1_ns = now_ns()
            elapsed = (t1_ns - t0_ns) * 1e-9
            if registry is not None:
                registry.add(writer, "executed")
                registry.observe(writer, "task_b_seconds", elapsed)
            if tracer is not None:
                tracer.record(
                    EventKind.TASK_B, t0_ns, t1_ns, arg=i, arg2=worker_id
                )

            if fault_plan is not None:
                if i in fault_plan.conflict_iterations and speculative:
                    # Forced misspeculation: report a read of a version that
                    # can never validate, so the committer must roll back
                    # and re-execute serially.
                    logger.info(
                        "injected forced conflict in worker %d at "
                        "iteration %d", worker_id, i,
                    )
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.FORCED_CONFLICT),
                        )
                    reads = dict(reads)
                    reads[("__chaos__", i)] = 0
                if i in fault_plan.latency_iterations:
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.RESULT_LATENCY),
                        )
                    time.sleep(fault_plan.latency_seconds)
                if i in fault_plan.drop_result_iterations:
                    logger.info(
                        "injected result drop in worker %d at iteration %d",
                        worker_id, i,
                    )
                    if registry is not None:
                        registry.add(writer, "chaos_injections")
                    if tracer is not None:
                        tracer.instant(
                            EventKind.CHAOS, arg=i, arg2=worker_id,
                            detail=int(ChaosCode.RESULT_DROP),
                        )
                    continue  # the result message is lost on the wire
            message = ("result", worker_id, i, result, reads, writes, elapsed)
            # Bounded, shutdown-aware send: an unbounded put would spin in
            # the credit wait forever if the committer died mid-chunk (the
            # one exit path a SIGKILLed parent cannot set the shutdown
            # event for — the orphan guard is the only way out).
            try:
                done.put(message, timeout=_IDLE_POLL)
            except ChannelTimeout:
                if not _drain_flush(done, shutdown):
                    return  # orphaned: nobody is left to read results
            if (
                fault_plan is not None
                and i in fault_plan.duplicate_result_iterations
            ):
                if registry is not None:
                    registry.add(writer, "chaos_injections")
                if tracer is not None:
                    tracer.instant(
                        EventKind.CHAOS, arg=i, arg2=worker_id,
                        detail=int(ChaosCode.RESULT_DUPLICATE),
                    )
                try:
                    done.put(message, timeout=_IDLE_POLL)
                except ChannelTimeout:
                    if not _drain_flush(done, shutdown):
                        return
        _drain_flush(done, shutdown)
