"""Pluggable wire transports beneath :class:`~repro.exec.channels.ProcessChannel`.

The channel layer owns the *protocol*: framing policy, credit-based flow
control, STOP discipline, chaos injection, and occupancy statistics.  This
module owns the *wire* — how an encoded frame physically crosses between
processes — behind a small duck-typed interface:

``send(items, framed, timeout) -> serialize_seconds``
    Deliver one message (a frame of items, or a single unframed object when
    ``framed`` is false).  Returns the seconds spent serializing so the
    channel can account comm overhead.  Raises :class:`TransportFull` when
    the wire cannot accept the message within ``timeout`` — the channel
    refunds the frame's credit and surfaces a ``ChannelTimeout``.

``recv(timeout) -> (items, single, deserialize_seconds)``
    Block up to ``timeout`` for one message.  Exactly one of ``items``
    (a decoded frame) and ``single`` (an unframed object) is meaningful:
    ``items is None`` marks the unframed case.  Raises
    :class:`TransportEmpty` on timeout.

``recv_nowait()``
    Non-blocking :meth:`recv` for drain paths; must never wedge, even when
    a peer died holding a transport lock.

``close(join=False)``
    Release wire resources.  ``join=True`` is the cooperative variant (a
    child about to hard-exit flushing its side); ``join=False`` is the
    teardown variant that must not block on dead peers.

Three backends:

:class:`PipeTransport`
    The PR 3 wire: a ``multiprocessing.Queue`` carrying pickled frames.
    Portable, kernel-buffered, but every item pays pickle + pipe write +
    kernel copy.

:class:`ShmRingTransport`
    A shared-memory ring buffer (``multiprocessing.shared_memory``) of
    fixed-size slots with an aligned-int64 seq-number publication
    discipline — the crash-safe ring proven in :mod:`repro.obs.spool`,
    here with blocking flow control instead of overwrite.  Messages are
    written directly into the mapped segment (homogeneous ``bytes``
    frames entirely pickle-free) and decoded straight out of it, so the
    kernel never copies payload bytes at all.

:class:`ThreadTransport`
    An in-process deque for thread-mode pipelines: items move by
    reference, no serialization, no copies — the fastest wire when the
    workload is I/O-bound or the interpreter is free-threaded.

Shared-memory lifecycle: the creating process owns the segment.  Only the
owner's :meth:`~ShmRingTransport.close` unlinks; attached processes merely
unmap.  The owner stays registered with ``multiprocessing.resource_tracker``
so even a SIGKILLed run leaks nothing — the tracker unlinks the segment once
every process that mapped it has died.  Segments are named
``repro-shm-<pid>-<hex>`` so :func:`orphaned_segments` can audit ``/dev/shm``
for leaks (``python -m repro shm-audit``).

Publication ordering relies on the writer storing the slot's seq *after*
its payload, and on aligned 8-byte stores being atomic — true on every
platform CPython supports; on weakly-ordered ISAs the interpreter's own
synchronization has kept this discipline sound for :mod:`repro.obs.spool`
as well.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue_module
import struct
import time
from collections import deque
from threading import Condition
from typing import Any, List, Optional, Tuple

#: Prefix for every shared-memory segment this package creates — the
#: auditable namespace ``repro shm-audit`` scans for leaks.
SHM_PREFIX = "repro-shm-"

#: Where POSIX named shared memory surfaces as files (Linux).  Platforms
#: without it simply audit clean.
_SHM_DIR = "/dev/shm"

#: Ring slot header: message seq (int64, written last — the publication
#: point), payload length (u32), flags (u32).
_SLOT_HEADER = struct.Struct("<qII")

#: Slot flags.
_FLAG_SINGLE = 0  #: pickled single object (unframed message)
_FLAG_FRAME = 1  #: pickled list of items
_FLAG_RAW = 2  #: homogeneous bytes frame, written in place (no pickle)
_FLAG_WRAP = 3  #: marker: rest of the ring lap is skipped, message at slot 0

#: An int64 cursor cell in the ring header.
_I64 = struct.Struct("<q")

#: Ring header cell offsets (all 8-byte aligned).  ``head_slot`` is the
#: reader's cumulative freed-slot count — the one cell writers read without
#: the recv lock, so it sits alone; the reader's cursors live beside it and
#: the writer's cursors a cache line away.
_OFF_HEAD = 0
_OFF_READ_SLOT = 8
_OFF_READ_SEQ = 16
_OFF_DATA_WAIT = 24
_OFF_TAIL_SLOT = 64
_OFF_NEXT_SEQ = 72
_OFF_SPACE_WAIT = 80
_RING_BASE = 128

#: Defensive cap on one event wait: wakeups are event-driven (set/clear),
#: the timeout only bounds the damage of a peer that died between
#: publishing and signalling.
_WAIT_SLICE = 0.05


class TransportFull(Exception):
    """The wire could not accept a message within its timeout."""


class TransportEmpty(Exception):
    """No message arrived within the timeout."""


class PipeTransport:
    """The PR 3 wire: one ``multiprocessing.Queue`` of pickled frames."""

    kind = "pipe"

    def __init__(self, ctx, capacity: int) -> None:
        # Frames never outnumber their items, so a frame-count maxsize of
        # ``capacity`` can never bound tighter than the channel's item
        # credit does; the credit check is the real full/empty discipline.
        self._queue = ctx.Queue(maxsize=capacity)

    def send(
        self, items: List[Any], framed: bool, timeout: Optional[float]
    ) -> float:
        from repro.exec.channels import encode_frame

        serialize_seconds = 0.0
        if framed:
            started = time.perf_counter()
            payload = encode_frame(items)
            serialize_seconds = time.perf_counter() - started
        else:
            payload = items[0]
        try:
            self._queue.put(payload, block=True, timeout=timeout)
        except _queue_module.Full:
            raise TransportFull("pipe transport full") from None
        return serialize_seconds

    def recv(
        self, timeout: Optional[float]
    ) -> Tuple[Optional[List[Any]], Any, float]:
        try:
            raw = self._queue.get(block=True, timeout=timeout)
        except _queue_module.Empty:
            raise TransportEmpty("pipe transport empty") from None
        return self._decode(raw)

    def recv_nowait(self) -> Tuple[Optional[List[Any]], Any, float]:
        try:
            raw = self._queue.get_nowait()
        except _queue_module.Empty:
            raise TransportEmpty("pipe transport empty") from None
        return self._decode(raw)

    @staticmethod
    def _decode(raw: Any) -> Tuple[Optional[List[Any]], Any, float]:
        from repro.exec.channels import decode_frame

        started = time.perf_counter()
        items = decode_frame(raw)
        deserialize_seconds = time.perf_counter() - started
        if items is None:
            return None, raw, deserialize_seconds
        return items, None, deserialize_seconds

    def close(self, join: bool = False) -> None:
        if join:
            self._queue.close()
            self._queue.join_thread()
        else:
            self._queue.cancel_join_thread()
            self._queue.close()


class ShmRingTransport:
    """A blocking MPMC ring of fixed-size slots in named shared memory.

    Layout: a 128-byte header of aligned-int64 cursors, then ``slots``
    cells of ``slot_bytes`` each.  A message occupies one or more
    *contiguous* cells — the first carries the 16-byte slot header (seq,
    length, flags), the payload runs through the rest.  A message that
    would straddle the ring end is preceded by a WRAP marker that skips
    the remainder of the lap, so payload bytes are always one contiguous
    span (decode is a single ``pickle.loads``/slice over the mapping).

    Publication is torn-write safe the :mod:`repro.obs.spool` way: the
    writer fills payload, length, and flags first and stores the slot's
    seq *last*; a reader polling the head slot treats any seq other than
    the one it expects as "not yet published" — a crashed writer leaves a
    stale seq, never a half-read frame.

    Concurrency: senders serialize on ``send_lock``, receivers on
    ``recv_lock`` (both channels are multi-producer — N workers share the
    done channel, and crashed workers hand chunks back to the work
    channel — and the work channel is multi-consumer).  The writer-side
    cursors (``tail_slot``, ``next_seq``) and reader-side cursors
    (``read_slot``, ``read_seq``) live *in the segment* under their
    respective locks so every process sees one truth; ``head_slot`` (the
    reader's cumulative freed count) is published with a plain aligned
    store and read locklessly by writers for flow control — a stale read
    only makes a writer wait one poll longer.

    Frames decode inside the recv lock, straight out of the mapping
    (``pickle.loads`` on a memoryview slice; raw frames slice ``bytes``
    per item) — the slot cannot be reused until the reader publishes the
    new ``head_slot``, so the zero-copy view is stable for exactly as
    long as it is read.
    """

    kind = "shm"

    #: Defaults: 256 slots x 8 KiB = a 2 MiB ring per channel.  A frame of
    #: 64 protocol tuples pickles to ~2 KiB (one slot); the largest single
    #: message may span the whole ring minus one header.
    DEFAULT_SLOTS = 256
    DEFAULT_SLOT_BYTES = 8192

    def __init__(
        self,
        ctx,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        from multiprocessing import shared_memory

        if slots < 2:
            raise ValueError("shm ring needs at least 2 slots")
        if slot_bytes < _SLOT_HEADER.size + 8:
            raise ValueError("shm ring slots too small for a header")
        self.slots = slots
        self.slot_bytes = slot_bytes
        name = f"{SHM_PREFIX}{os.getpid()}-{os.urandom(4).hex()}"
        self._shm = shared_memory.SharedMemory(
            create=True, name=name, size=_RING_BASE + slots * slot_bytes
        )
        self.name = self._shm.name
        #: Only the creating process unlinks the segment (attachers merely
        #: unmap); the owner's resource_tracker registration doubles as the
        #: SIGKILL backstop — the tracker unlinks once every mapper died.
        self._owner_pid = os.getpid()
        buf = self._shm.buf
        buf[:_RING_BASE] = b"\0" * _RING_BASE
        for k in range(slots):
            _SLOT_HEADER.pack_into(
                buf, _RING_BASE + k * slot_bytes, -1, 0, 0
            )
        self.send_lock = ctx.Lock()
        self.recv_lock = ctx.Lock()
        #: Wakeups are raw semaphore tokens, not ``ctx.Event``s: an Event
        #: is a Condition over a Lock, and a peer SIGKILLed inside that
        #: lock would wedge every later ``set()`` forever.  ``sem_post``
        #: can never block and ``sem_timedwait`` needs no helper lock, so
        #: the wake path survives any peer death.  Waiters declare
        #: themselves in the header first (the ``*_WAIT`` flag words), so
        #: the steady-state fast path pays no semaphore traffic at all;
        #: drain-then-recheck-then-wait keeps the handoff lossless.
        self.data_sem = ctx.Semaphore(0)
        self.space_sem = ctx.Semaphore(0)
        self._closed = False

    # -- pickling (spawn start method) --------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        return state

    def __setstate__(self, state):
        from multiprocessing import resource_tracker, shared_memory

        self.__dict__.update(state)
        self._shm = shared_memory.SharedMemory(name=self.name)
        # Attaching registers with the resource tracker on some Python
        # versions; unregister so a child exiting cannot unlink the ring
        # out from under the rest of the pipeline (bpo-39959).
        try:
            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass

    # -- helpers ------------------------------------------------------------------

    @property
    def max_payload(self) -> int:
        return self.slots * self.slot_bytes - _SLOT_HEADER.size

    def _cells(self, payload_len: int) -> int:
        """Contiguous slots a message of ``payload_len`` bytes occupies."""
        return -(-(payload_len + _SLOT_HEADER.size) // self.slot_bytes)

    @staticmethod
    def _deadline(timeout: Optional[float]) -> Optional[float]:
        return None if timeout is None else time.monotonic() + timeout

    def _wait_space(self, buf, tail: int, cells: int, deadline) -> None:
        """Block (holding the send lock) until ``cells`` slots are free."""
        if tail + cells - _I64.unpack_from(buf, _OFF_HEAD)[0] <= self.slots:
            return
        # Declare the wait in the header first (a plain aligned store the
        # reader polls instead of paying a semaphore signal per message),
        # then drain-then-recheck so a slot freed in between leaves a
        # token the timed wait below consumes immediately.
        _I64.pack_into(buf, _OFF_SPACE_WAIT, 1)
        try:
            while (
                tail + cells - _I64.unpack_from(buf, _OFF_HEAD)[0]
                > self.slots
            ):
                while self.space_sem.acquire(False):
                    pass
                if (
                    tail + cells - _I64.unpack_from(buf, _OFF_HEAD)[0]
                    <= self.slots
                ):
                    return
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportFull("shm ring full")
                    self.space_sem.acquire(True, min(remaining, _WAIT_SLICE))
                else:
                    self.space_sem.acquire(True, _WAIT_SLICE)
        finally:
            _I64.pack_into(buf, _OFF_SPACE_WAIT, 0)

    # -- send ---------------------------------------------------------------------

    def send(
        self, items: List[Any], framed: bool, timeout: Optional[float]
    ) -> float:
        if self._closed:
            raise OSError("shm ring transport is closed")
        deadline = self._deadline(timeout)
        raw = (
            framed
            and len(items) > 1
            and all(type(item) is bytes for item in items)
        )
        serialize_seconds = 0.0
        if raw:
            # Vectored in-place write: sizes computed here, bytes land
            # directly in the mapped segment below — zero intermediate
            # copies, no pickle on the fast path.
            lengths = [len(item) for item in items]
            payload_len = 4 + 4 * len(items) + sum(lengths)
            data = None
        else:
            started = time.perf_counter()
            data = pickle.dumps(
                list(items) if framed else items[0],
                pickle.HIGHEST_PROTOCOL,
            )
            serialize_seconds = time.perf_counter() - started
            payload_len = len(data)
        if payload_len > self.max_payload:
            raise ValueError(
                f"message of {payload_len} bytes exceeds shm ring capacity "
                f"({self.max_payload} bytes); construct the channel with a "
                f"larger ring or use the pipe transport"
            )
        cells = self._cells(payload_len)
        acquire_timeout = (
            -1 if deadline is None else max(0.0, deadline - time.monotonic())
        )
        if not self.send_lock.acquire(
            timeout=None if acquire_timeout == -1 else acquire_timeout
        ):
            raise TransportFull("shm ring send lock busy")
        try:
            buf = self._shm.buf
            tail = _I64.unpack_from(buf, _OFF_TAIL_SLOT)[0]
            seq = _I64.unpack_from(buf, _OFF_NEXT_SEQ)[0]
            index = tail % self.slots
            if index + cells > self.slots:
                # The message will not fit before the ring end: publish a
                # WRAP marker (it consumes one seq and the rest of the
                # lap) and restart at slot 0.  A timeout after this point
                # leaves a consistent ring — the marker is simply skipped
                # by the reader and the message retries on fresh credit.
                skip = self.slots - index
                self._wait_space(buf, tail, skip, deadline)
                offset = _RING_BASE + index * self.slot_bytes
                struct.pack_into("<II", buf, offset + 8, 0, _FLAG_WRAP)
                _I64.pack_into(buf, offset, seq)
                tail += skip
                seq += 1
                index = 0
                _I64.pack_into(buf, _OFF_TAIL_SLOT, tail)
                _I64.pack_into(buf, _OFF_NEXT_SEQ, seq)
                # Wake a waiting reader now: the payload wait below may
                # itself block on the reader skipping this marker and
                # freeing the tail of the lap.
                if _I64.unpack_from(buf, _OFF_DATA_WAIT)[0]:
                    self.data_sem.release()
            self._wait_space(buf, tail, cells, deadline)
            offset = _RING_BASE + index * self.slot_bytes
            body = offset + _SLOT_HEADER.size
            if raw:
                started = time.perf_counter()
                count = len(items)
                struct.pack_into(
                    f"<I{count}I", buf, body, count, *lengths
                )
                cursor = body + 4 + 4 * count
                for item in items:
                    end = cursor + len(item)
                    buf[cursor:end] = item
                    cursor = end
                serialize_seconds = time.perf_counter() - started
                flags = _FLAG_RAW
            else:
                buf[body : body + payload_len] = data
                flags = _FLAG_FRAME if framed else _FLAG_SINGLE
            struct.pack_into("<II", buf, offset + 8, payload_len, flags)
            _I64.pack_into(buf, offset, seq)  # publication point
            _I64.pack_into(buf, _OFF_TAIL_SLOT, tail + cells)
            _I64.pack_into(buf, _OFF_NEXT_SEQ, seq + 1)
            # Signal only a declared waiter: a steady-state reader never
            # sleeps, and an unconditional wake per message would cost
            # more semaphore traffic than the copy itself.
            wake = _I64.unpack_from(buf, _OFF_DATA_WAIT)[0]
        finally:
            self.send_lock.release()
        if wake:
            self.data_sem.release()
        return serialize_seconds

    # -- recv ---------------------------------------------------------------------

    def recv(
        self, timeout: Optional[float]
    ) -> Tuple[Optional[List[Any]], Any, float]:
        deadline = self._deadline(timeout)
        if not self.recv_lock.acquire(timeout=timeout):
            raise TransportEmpty("shm ring recv lock busy") from None
        try:
            return self._read_locked(deadline)
        finally:
            self.recv_lock.release()

    def recv_nowait(self) -> Tuple[Optional[List[Any]], Any, float]:
        # Bounded acquire: a peer killed while holding the lock must not
        # wedge drain/teardown paths — they treat "busy" as "empty".
        if not self.recv_lock.acquire(timeout=0.01):
            raise TransportEmpty("shm ring recv lock busy") from None
        try:
            return self._read_locked(time.monotonic())
        finally:
            self.recv_lock.release()

    def _read_locked(
        self, deadline: Optional[float]
    ) -> Tuple[Optional[List[Any]], Any, float]:
        if self._closed:
            raise OSError("shm ring transport is closed")
        buf = self._shm.buf
        read_slot = _I64.unpack_from(buf, _OFF_READ_SLOT)[0]
        read_seq = _I64.unpack_from(buf, _OFF_READ_SEQ)[0]
        while True:
            index = read_slot % self.slots
            offset = _RING_BASE + index * self.slot_bytes
            seq, length, flags = _SLOT_HEADER.unpack_from(buf, offset)
            if seq != read_seq:
                # Unpublished (or torn: a writer died mid-fill leaves the
                # stale seq of a previous lap) — nothing to consume yet.
                # Declare the wait (plain store writers poll), then
                # drain-then-recheck: a publication landing after the
                # drain leaves a token the timed wait consumes at once,
                # so no wakeup is ever lost.
                _I64.pack_into(buf, _OFF_DATA_WAIT, 1)
                try:
                    while self.data_sem.acquire(False):
                        pass
                    if _I64.unpack_from(buf, offset)[0] == read_seq:
                        continue
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportEmpty("shm ring empty")
                        self.data_sem.acquire(True, min(remaining, _WAIT_SLICE))
                    else:
                        self.data_sem.acquire(True, _WAIT_SLICE)
                finally:
                    _I64.pack_into(buf, _OFF_DATA_WAIT, 0)
                continue
            if flags == _FLAG_WRAP:
                read_slot += self.slots - index
                read_seq += 1
                self._publish_read(buf, read_slot, read_seq)
                continue
            body = offset + _SLOT_HEADER.size
            started = time.perf_counter()
            items: Optional[List[Any]] = None
            single: Any = None
            if flags == _FLAG_RAW:
                (count,) = struct.unpack_from("<I", buf, body)
                lengths = struct.unpack_from(f"<{count}I", buf, body + 4)
                cursor = body + 4 + 4 * count
                items = []
                for item_len in lengths:
                    end = cursor + item_len
                    items.append(bytes(buf[cursor:end]))
                    cursor = end
            elif flags == _FLAG_FRAME:
                items = pickle.loads(buf[body : body + length])
            else:
                single = pickle.loads(buf[body : body + length])
            deserialize_seconds = time.perf_counter() - started
            read_slot += self._cells(length)
            read_seq += 1
            self._publish_read(buf, read_slot, read_seq)
            return items, single, deserialize_seconds

    def _publish_read(self, buf, read_slot: int, read_seq: int) -> None:
        _I64.pack_into(buf, _OFF_READ_SLOT, read_slot)
        _I64.pack_into(buf, _OFF_READ_SEQ, read_seq)
        # Freed slots become visible to writers last (aligned store).
        _I64.pack_into(buf, _OFF_HEAD, read_slot)
        if _I64.unpack_from(buf, _OFF_SPACE_WAIT)[0]:
            self.space_sem.release()

    # -- lifecycle ----------------------------------------------------------------

    def close(self, join: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        owner = os.getpid() == self._owner_pid
        try:
            self._shm.close()
        except BufferError:
            # A live memoryview pins the mapping (an interrupted decode);
            # leave it mapped — unlink below still reclaims the name.
            pass
        if owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"ShmRingTransport({self.name!r}, slots={self.slots}, "
            f"slot_bytes={self.slot_bytes})"
        )


class ThreadTransport:
    """In-process wire for thread-mode pipelines: items move by reference.

    No serialization, no copies, no kernel — the channel's credit counters
    still bound occupancy, STOP and chaos semantics are unchanged.  Not
    picklable: a thread transport cannot cross a process boundary.
    """

    kind = "thread"

    def __init__(self) -> None:
        self._messages: deque = deque()
        self._ready = Condition()

    def send(
        self, items: List[Any], framed: bool, timeout: Optional[float]
    ) -> float:
        message = (list(items), framed)
        with self._ready:
            self._messages.append(message)
            self._ready.notify()
        return 0.0

    def recv(
        self, timeout: Optional[float]
    ) -> Tuple[Optional[List[Any]], Any, float]:
        with self._ready:
            if not self._messages and not self._ready.wait_for(
                lambda: self._messages, timeout
            ):
                raise TransportEmpty("thread transport empty")
            items, framed = self._messages.popleft()
        if framed:
            return items, None, 0.0
        return None, items[0], 0.0

    def recv_nowait(self) -> Tuple[Optional[List[Any]], Any, float]:
        with self._ready:
            if not self._messages:
                raise TransportEmpty("thread transport empty")
            items, framed = self._messages.popleft()
        if framed:
            return items, None, 0.0
        return None, items[0], 0.0

    def close(self, join: bool = False) -> None:
        # Shared by every thread of the pipeline; a "crashing" worker
        # thread closing its channel must not sever the others.
        pass

    def __reduce__(self):
        raise TypeError(
            "ThreadTransport is in-process only and cannot be pickled; "
            "use the 'pipe' or 'shm' transport for process workers"
        )


#: The transport axis ``--transport`` exposes.
TRANSPORT_KINDS = ("pipe", "shm", "thread")


def make_transport(
    kind: str,
    ctx,
    capacity: int,
    *,
    ring_slots: int = ShmRingTransport.DEFAULT_SLOTS,
    ring_slot_bytes: int = ShmRingTransport.DEFAULT_SLOT_BYTES,
):
    """Build a transport backend by name (see :data:`TRANSPORT_KINDS`)."""
    if kind == "pipe":
        return PipeTransport(ctx, capacity)
    if kind == "shm":
        return ShmRingTransport(
            ctx, slots=ring_slots, slot_bytes=ring_slot_bytes
        )
    if kind == "thread":
        return ThreadTransport()
    raise ValueError(
        f"unknown transport {kind!r}; expected one of {TRANSPORT_KINDS}"
    )


# -- /dev/shm leak auditing -------------------------------------------------------


def orphaned_segments(include_generic: bool = False) -> List[str]:
    """Names of shared-memory segments this package (or, with
    ``include_generic``, any ``multiprocessing.shared_memory`` user)
    currently holds in ``/dev/shm``.

    On platforms without a ``/dev/shm`` the audit is vacuously clean.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    ours = [name for name in sorted(entries) if name.startswith(SHM_PREFIX)]
    if include_generic:
        ours += [name for name in sorted(entries) if name.startswith("psm_")]
    return ours


def reap_stale_segments() -> List[str]:
    """Unlink ring segments whose creating process no longer exists.

    A SIGKILL of the whole process *group* takes the resource tracker down
    with the run, so nobody is left to unlink — the one crash shape no
    in-flight backstop can cover.  Segment names embed the creator pid
    (``repro-shm-<pid>-<hex>``), so a later process can prove staleness
    and reclaim the name.  Unlinking only removes the name: a straggling
    child still unwinding keeps its mapping until it exits.
    """
    from multiprocessing import shared_memory

    reaped = []
    for name in orphaned_segments():
        try:
            pid = int(name.split("-")[2])
        except (IndexError, ValueError):
            continue
        try:
            os.kill(pid, 0)
            continue  # creator alive: the segment may be in flight
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # pid reused by another user's process
        try:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
            reaped.append(name)
        except FileNotFoundError:
            pass
    return reaped


def wait_for_reclaim(timeout: float = 5.0) -> List[str]:
    """Segments still present after giving lagging reclaims ``timeout``
    seconds — after a SIGKILL the resource tracker unlinks a segment only
    once every mapping process has died, which takes up to one
    orphan-guard poll interval.  Empty list = clean."""
    deadline = time.monotonic() + timeout
    leaked = orphaned_segments()
    while leaked and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked = orphaned_segments()
    return leaked


def assert_no_orphans(timeout: float = 5.0) -> None:
    """Fail loudly if orphaned ``repro-shm-*`` segments persist past the
    reclaim wait window."""
    leaked = wait_for_reclaim(timeout)
    if leaked:
        raise AssertionError(
            f"orphaned shared-memory segments in {_SHM_DIR}: {leaked}"
        )
