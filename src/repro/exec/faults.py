"""Fault injection and the engine's robustness policy.

Real multiprocess pipelines fail in ways the threaded runtime never could:
a worker segfaults, hangs, or the producer dies mid-stream.  The engine
treats every such event as a *misspeculation of the scheduling kind* — the
lost task is re-executed serially by the committer and committed exactly
once, in order.

:class:`FaultPlan` describes deliberate failures for testing and the
``--inject-faults`` CLI path; :class:`RobustnessPolicy` bounds how patient
and how forgiving the engine is (per-task timeout, respawn budget, and the
stall deadline after which it degrades to sequential execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional


@dataclass(frozen=True)
class FaultPlan:
    """Deliberate failures, keyed by the iteration a worker picks up.

    ``crash_iterations``  — the worker hard-exits (``os._exit``) after
    claiming the task: a real process death, detected by the engine through
    the exit code, never through an exception.
    ``error_iterations``  — the worker raises; it reports the fault and
    survives (a soft fault).
    ``hang_iterations``   — the worker sleeps past the policy's task
    timeout, forcing the engine to declare it hung and kill it.
    ``producer_crash_at`` — the producer hard-exits before dispatching this
    iteration, exercising the sequential-fallback path.

    The chaos-harness extensions (:mod:`repro.resilience.chaos`) inject
    misbehaviour *between* healthy execution and hard failure:

    ``conflict_iterations``  — the worker poisons its reported read set so
    commit-time validation fails (a forced misspeculation; on
    non-speculative specs it degenerates to a soft fault);
    ``latency_iterations``   — the worker sleeps ``latency_seconds`` before
    reporting its result (a channel latency spike);
    ``duplicate_result_iterations`` — the result message is sent twice,
    exercising the committer's exactly-once dedup;
    ``drop_result_iterations``      — the result message is silently lost;
    recovery rides the hung-task timeout path.

    Crashes fire at most once per iteration by construction: a claimed
    iteration is retried *serially* by the committer, where no injection
    applies.
    """

    crash_iterations: FrozenSet[int] = field(default_factory=frozenset)
    error_iterations: FrozenSet[int] = field(default_factory=frozenset)
    hang_iterations: FrozenSet[int] = field(default_factory=frozenset)
    hang_seconds: float = 60.0
    producer_crash_at: Optional[int] = None
    conflict_iterations: FrozenSet[int] = field(default_factory=frozenset)
    latency_iterations: FrozenSet[int] = field(default_factory=frozenset)
    latency_seconds: float = 0.02
    duplicate_result_iterations: FrozenSet[int] = field(
        default_factory=frozenset
    )
    drop_result_iterations: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        for name in (
            "crash_iterations",
            "error_iterations",
            "hang_iterations",
            "conflict_iterations",
            "latency_iterations",
            "duplicate_result_iterations",
            "drop_result_iterations",
        ):
            object.__setattr__(self, name, frozenset(getattr(self, name)))

    @classmethod
    def default_for(cls, iterations: int) -> "FaultPlan":
        """The CLI's ``--inject-faults`` plan: one crash, one soft error."""
        crash = {iterations // 3} if iterations else frozenset()
        error = {(2 * iterations) // 3} if iterations > 1 else frozenset()
        return cls(crash_iterations=crash, error_iterations=error - crash)

    @classmethod
    def seeded(cls, iterations: int, seed: int) -> "FaultPlan":
        """A small reproducible plan for ``--inject-faults --seed N``.

        One crash and one soft error like :meth:`default_for`, but at
        seed-chosen iterations, so every injected run is replayable from its
        printed seed.
        """
        import random

        if iterations <= 0:
            return cls()
        rng = random.Random(seed)
        picks = rng.sample(range(iterations), min(2, iterations))
        crash = {picks[0]}
        error = {picks[1]} if len(picks) > 1 else set()
        return cls(crash_iterations=crash, error_iterations=error)

    @property
    def any_faults(self) -> bool:
        return self.injected_fault_count > 0

    @property
    def injected_fault_count(self) -> int:
        """Total distinct injections this plan will attempt."""
        return (
            len(self.crash_iterations)
            + len(self.error_iterations)
            + len(self.hang_iterations)
            + len(self.conflict_iterations)
            + len(self.latency_iterations)
            + len(self.duplicate_result_iterations)
            + len(self.drop_result_iterations)
            + (1 if self.producer_crash_at is not None else 0)
        )

    def clamped_to(self, policy: "RobustnessPolicy") -> "FaultPlan":
        """Bound ``hang_seconds`` by the policy's task timeout (plus a grace
        margin so the hang is still *detected* as a hang).

        A misconfigured ``hang_seconds`` of minutes against a sub-second
        ``task_timeout`` would otherwise stall teardown paths toward CI's
        job ceiling; the engine applies this clamp at start.
        """
        ceiling = policy.task_timeout + max(1.0, 4 * policy.poll_interval)
        if self.hang_seconds <= ceiling:
            return self
        return replace(self, hang_seconds=ceiling)


class InjectedFault(RuntimeError):
    """The soft fault a worker raises for ``error_iterations``."""


@dataclass(frozen=True)
class RobustnessPolicy:
    """How patient and forgiving the engine is.

    ``task_timeout``  — seconds a claimed task may run before its worker is
    presumed hung and killed;
    ``stall_timeout`` — seconds without any commit progress before the
    engine abandons the pipeline and finishes sequentially;
    ``max_respawns``  — total replacement workers across the run; beyond
    this budget dead workers stay dead (graceful degradation);
    ``poll_interval`` — the committer's channel-poll granularity, which is
    also the health-check and occupancy-sampling cadence;
    ``join_timeout``  — seconds to wait for clean child exit at teardown
    before resorting to ``terminate``.
    """

    task_timeout: float = 30.0
    stall_timeout: float = 60.0
    max_respawns: int = 3
    poll_interval: float = 0.05
    join_timeout: float = 5.0

    def __post_init__(self):
        if self.task_timeout <= 0 or self.stall_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        if self.max_respawns < 0:
            raise ValueError("respawn budget cannot be negative")
