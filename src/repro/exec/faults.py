"""Fault injection and the engine's robustness policy.

Real multiprocess pipelines fail in ways the threaded runtime never could:
a worker segfaults, hangs, or the producer dies mid-stream.  The engine
treats every such event as a *misspeculation of the scheduling kind* — the
lost task is re-executed serially by the committer and committed exactly
once, in order.

:class:`FaultPlan` describes deliberate failures for testing and the
``--inject-faults`` CLI path; :class:`RobustnessPolicy` bounds how patient
and how forgiving the engine is (per-task timeout, respawn budget, and the
stall deadline after which it degrades to sequential execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional


@dataclass(frozen=True)
class FaultPlan:
    """Deliberate failures, keyed by the iteration a worker picks up.

    ``crash_iterations``  — the worker hard-exits (``os._exit``) after
    claiming the task: a real process death, detected by the engine through
    the exit code, never through an exception.
    ``error_iterations``  — the worker raises; it reports the fault and
    survives (a soft fault).
    ``hang_iterations``   — the worker sleeps past the policy's task
    timeout, forcing the engine to declare it hung and kill it.
    ``producer_crash_at`` — the producer hard-exits before dispatching this
    iteration, exercising the sequential-fallback path.

    Crashes fire at most once per iteration by construction: a claimed
    iteration is retried *serially* by the committer, where no injection
    applies.
    """

    crash_iterations: FrozenSet[int] = field(default_factory=frozenset)
    error_iterations: FrozenSet[int] = field(default_factory=frozenset)
    hang_iterations: FrozenSet[int] = field(default_factory=frozenset)
    hang_seconds: float = 60.0
    producer_crash_at: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(
            self, "crash_iterations", frozenset(self.crash_iterations)
        )
        object.__setattr__(
            self, "error_iterations", frozenset(self.error_iterations)
        )
        object.__setattr__(
            self, "hang_iterations", frozenset(self.hang_iterations)
        )

    @classmethod
    def default_for(cls, iterations: int) -> "FaultPlan":
        """The CLI's ``--inject-faults`` plan: one crash, one soft error."""
        crash = {iterations // 3} if iterations else frozenset()
        error = {(2 * iterations) // 3} if iterations > 1 else frozenset()
        return cls(crash_iterations=crash, error_iterations=error - crash)

    @property
    def any_faults(self) -> bool:
        return bool(
            self.crash_iterations
            or self.error_iterations
            or self.hang_iterations
            or self.producer_crash_at is not None
        )


class InjectedFault(RuntimeError):
    """The soft fault a worker raises for ``error_iterations``."""


@dataclass(frozen=True)
class RobustnessPolicy:
    """How patient and forgiving the engine is.

    ``task_timeout``  — seconds a claimed task may run before its worker is
    presumed hung and killed;
    ``stall_timeout`` — seconds without any commit progress before the
    engine abandons the pipeline and finishes sequentially;
    ``max_respawns``  — total replacement workers across the run; beyond
    this budget dead workers stay dead (graceful degradation);
    ``poll_interval`` — the committer's channel-poll granularity, which is
    also the health-check and occupancy-sampling cadence;
    ``join_timeout``  — seconds to wait for clean child exit at teardown
    before resorting to ``terminate``.
    """

    task_timeout: float = 30.0
    stall_timeout: float = 60.0
    max_respawns: int = 3
    poll_interval: float = 0.05
    join_timeout: float = 5.0

    def __post_init__(self):
        if self.task_timeout <= 0 or self.stall_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        if self.max_respawns < 0:
            raise ValueError("respawn budget cannot be negative")
