"""Weighted round-robin across tenants, FIFO within a tenant.

Plain data structure, no locking: the service serializes every call under
its own lock, which keeps this independently unit-testable.

The discipline: tenants rotate in first-seen order; while the rotation
points at a tenant, it may dequeue up to ``weight`` jobs (its *credit*)
before the cursor advances; within a tenant jobs leave strictly in
submission order.  A tenant that is empty or ineligible (its running quota
is full) is skipped without consuming credit, so one tenant's saturation
never costs another its turn — the fairness half of the isolation story
(:mod:`repro.service.tenants` is the speculation half).

Cancelled queued jobs are removed eagerly via :meth:`FairScheduler.remove`
(so a tenant at its queued quota can resubmit the instant a cancel is
acknowledged, and the deques never accumulate dead entries between
dispatches); the lazy head-prune at dequeue time remains as a second line
of defense for any state flip that bypasses removal.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.service.jobs import Job, JobState


class FairScheduler:
    """The queued-job store plus the weighted round-robin dequeue policy."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[Job]] = {}
        self._ring: List[str] = []  # tenant rotation, first-seen order
        self._cursor = 0
        self._credit = 0  # dequeues left for the cursor's tenant this turn

    # -- enqueue side ------------------------------------------------------------

    def enqueue(self, job: Job) -> None:
        queue = self._queues.get(job.tenant)
        if queue is None:
            queue = self._queues[job.tenant] = deque()
            self._ring.append(job.tenant)
        queue.append(job)

    def push_front(self, job: Job) -> None:
        """Return a job taken but not dispatched (a lease race) to the head
        of its tenant's queue, preserving FIFO order."""
        queue = self._queues.get(job.tenant)
        if queue is None:
            queue = self._queues[job.tenant] = deque()
            self._ring.append(job.tenant)
        queue.appendleft(job)

    def remove(self, job: Job) -> bool:
        """Eagerly remove a job (cancelled while queued) from its tenant's
        deque.  O(queue length), but cancels are rare and the payoff is
        immediate quota release plus no dead entries lingering until the
        next dispatch scan.  Returns True if the job was present."""
        queue = self._queues.get(job.tenant)
        if not queue:
            return False
        try:
            queue.remove(job)
        except ValueError:
            return False
        return True

    # -- dequeue side ------------------------------------------------------------

    def take(
        self,
        eligible: Callable[[str], bool],
        weight_of: Callable[[str], int],
    ) -> Optional[Job]:
        """The next job to dispatch under weighted round-robin, or None.

        ``eligible(tenant)`` gates tenants whose running quota is full;
        ``weight_of(tenant)`` is the tenant's credit per rotation turn.
        """
        if not self._ring:
            return None
        scanned = 0
        while scanned <= len(self._ring):
            if self._cursor >= len(self._ring):
                self._cursor = 0
            tenant = self._ring[self._cursor]
            queue = self._prune(tenant)
            if queue and eligible(tenant):
                if self._credit <= 0:
                    self._credit = max(1, weight_of(tenant))
                job = queue.popleft()
                self._credit -= 1
                if self._credit <= 0:
                    self._advance()
                return job
            self._advance()
            scanned += 1
        return None

    def _advance(self) -> None:
        self._cursor += 1
        self._credit = 0
        if self._cursor >= len(self._ring):
            self._cursor = 0

    def _prune(self, tenant: str) -> Deque[Job]:
        """Drop cancelled jobs from the head so FIFO peeks see live work."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        while queue and queue[0].state is not JobState.QUEUED:
            queue.popleft()
        return queue

    # -- introspection -----------------------------------------------------------

    def depth(self, tenant: Optional[str] = None) -> int:
        """Live queued jobs, overall or for one tenant (cancelled jobs
        awaiting lazy removal are not counted)."""
        if tenant is not None:
            return sum(
                1 for job in self._queues.get(tenant, ())
                if job.state is JobState.QUEUED
            )
        return sum(
            1 for queue in self._queues.values()
            for job in queue if job.state is JobState.QUEUED
        )

    def queued_jobs(self) -> List[Job]:
        return [
            job for queue in self._queues.values()
            for job in queue if job.state is JobState.QUEUED
        ]
