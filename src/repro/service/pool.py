"""The shared worker pool: long-lived phase-B processes leased across jobs.

Fork-per-job pays a process spawn, a channel allocation, and a shared-memory
mapping for every pipeline run — fine for one run, ruinous for a job server.
This pool amortizes all of it: a fixed set of worker processes is spawned
once, every process inherits every *slot* (one slot = the channel pair,
shutdown event, watermark/window values, and metrics registry for one
concurrent job), and a job *leases* workers into a slot instead of forking.

The split matters because of multiprocessing's inheritance rule: shared
primitives (queues, ``Value``/``RawArray``, events) can only reach a child
through its spawn-time arguments, never over a pipe afterwards.  So the
shareable skeleton of every future job must exist *before* the first worker
starts — hence slots — while the job-specific, plain-picklable payload
(work function, state snapshot, fault plan) travels over each worker's
control pipe at lease time.

:class:`LeaseRuntime` implements the external-runtime contract documented
on :class:`repro.exec.engine.ExecutionEngine`: the engine runs its normal
committer loop against the slot's channels, and delegates process lifecycle
(respawn, teardown, halt, cancellation) here.  Phase A runs as a *thread*
in the server process (:class:`_ThreadProducer`) — the producer is cheap,
sequential, and stateful, and a thread spares a fork per job.  Consequence:
fault plans with ``producer_crash_at`` are rejected (``os._exit`` in a
thread would kill the server).

Between leases a slot is scrubbed: channels are drained until the shared
credit counters agree, local buffers and counters are reset, and the
registry is zeroed so each job's watchdog sees counters that start at zero.
Workers that died mid-job (chaos, hung-task kills) are retired at release
and the pool respawns replacements to hold its configured size.

One staleness caveat, by design: a worker respawned *mid-job* is leased the
job's initial state snapshot, not the committed prefix (the prefix lives in
the committer and can be large).  Speculative tasks it runs may therefore
conflict more often — commit-time validation catches every such case and
the serial re-execution path preserves exactness.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exec.channels import ChannelTimeout, ProcessChannel
from repro.exec.faults import FaultPlan, RobustnessPolicy
from repro.exec.rollback import CommittedStore
from repro.exec.workers import _worker_loop, producer_main
from repro.obs.events import TraceConfig
from repro.obs.registry import MetricsRegistry, WRITER_PRODUCER, WRITER_WORKER0
from repro.obs.spool import open_tracer

logger = logging.getLogger(__name__)

#: How often an idle pool worker re-checks its control pipe / the pool
#: shutdown event (seconds).
_CONTROL_POLL = 0.2

#: How long a between-lease settle waits for in-flight frames to drain
#: before giving up on a slot's counters agreeing (seconds).
_SETTLE_TIMEOUT = 2.0


def _done_capacity(capacity: int, workers: int, batch_size: int) -> int:
    """Worst-case in-flight done traffic — same formula as the engine:
    a claim and a result per item in the transport or held in a chunk,
    plus one "stopped" per worker."""
    return 2 * (capacity + workers * batch_size) + workers + 8


class _Slot:
    """The inheritable skeleton of one concurrent job.

    Everything here crosses into pool workers through their spawn-time
    arguments (the multiprocessing inheritance rule), so slots are created
    before any worker starts and reused for the pool's whole life.
    """

    def __init__(
        self, index: int, ctx, capacity: int, workers: int,
        batch_size: int, flush_interval: float, writer_rows: int,
        transport: str = "pipe",
    ) -> None:
        self.index = index
        self.work = ProcessChannel(
            capacity, name="work", ctx=ctx,
            batch_size=batch_size, flush_interval=flush_interval,
            transport=transport,
        )
        self.done = ProcessChannel(
            _done_capacity(capacity, workers, batch_size),
            name="done", ctx=ctx,
            batch_size=batch_size, flush_interval=flush_interval,
            transport=transport,
        )
        self.watermark = ctx.Value("l", 0)
        self.window = ctx.Value("l", 0)
        self.shutdown = ctx.Event()
        self.registry = MetricsRegistry.create(ctx, writer_rows)


class _OrphanGuard:
    """The slot's shutdown event, plus parent-death detection.

    A server killed with SIGKILL cannot tell its workers anything: the
    control pipe never EOFs (sibling workers inherited the other end at
    fork) and the shutdown event is never set, so an orphaned worker
    would idle — or spin inside ``_worker_loop`` — forever.  Exposing
    parent death through ``is_set()`` makes the engine's existing
    cooperative-exit path double as the orphan reaper."""

    def __init__(self, shutdown, parent_pid: int) -> None:
        self._shutdown = shutdown
        self._parent = parent_pid

    def is_set(self) -> bool:
        return self._shutdown.is_set() or os.getppid() != self._parent


def pool_worker_main(
    worker_id: int, control, slots: Tuple[_Slot, ...], pool_shutdown, row: int
) -> None:
    """A pool worker's whole life: idle on the control pipe, run one lease
    at a time through the engine's own :func:`_worker_loop`, release, idle.

    ``row`` is this process's registry writer row — fixed at spawn, valid
    in every slot's registry (all are sized for the pool's row budget).
    """
    parent = os.getppid()
    while not pool_shutdown.is_set():
        if os.getppid() != parent:
            return  # orphaned: the server died without a goodbye
        if not control.poll(_CONTROL_POLL):
            continue
        try:
            message = control.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        if message[0] != "lease":
            continue
        (_, slot_index, work_fn, speculative, snapshot, fault_plan,
         max_chunk, trace) = message
        slot = slots[slot_index]
        # A previous lease of this slot may have left stale frames in this
        # process's local buffers (a flush that timed out at teardown);
        # they must never leak into this job's stream.
        slot.work.reset_local()
        slot.done.reset_local()
        registry = slot.registry
        writer = min(row, registry.writers - 1)
        # Per-lease tracing: the job's spool directory arrives as plain
        # picklable data in the lease message (the slot skeleton cannot
        # carry it — it predates every job), and the spool lives exactly
        # as long as the lease.  Role is the *pool* worker id, so a trace
        # names the same process across every job it serves.
        tracer = open_tracer(trace, f"worker-{worker_id}")
        slot.work.tracer = tracer
        slot.done.tracer = tracer

        def stop(done=slot.done, wid=worker_id) -> None:
            # Buffer (never blocks), then a bounded flush: the server may
            # already be gone, and a goodbye must not wedge the exit.
            done.put_buffered(("stopped", wid))
            try:
                done.flush(timeout=1.0)
            except ChannelTimeout:
                pass

        try:
            _worker_loop(
                worker_id, slot.work, slot.done, work_fn, speculative,
                snapshot, fault_plan, _OrphanGuard(slot.shutdown, parent),
                slot.watermark, slot.window, max_chunk, stop, tracer,
                registry, writer,
            )
        except (EOFError, OSError):
            pass
        finally:
            slot.work.tracer = None
            slot.done.tracer = None
            if tracer is not None:
                tracer.close()
        try:
            control.send(("released", worker_id, slot_index))
        except (BrokenPipeError, OSError):
            return


class _ThreadProducer:
    """Phase A on a thread, satisfying the engine's process-handle contract
    (``is_alive``/``exitcode``/``terminate``/``join``).

    ``terminate`` is a no-op: a thread can only be stopped cooperatively,
    which the slot's shutdown event already does (``producer_main``
    re-checks it at every bounded flush)."""

    def __init__(
        self, work: ProcessChannel, iterations: int, produce, fault_plan,
        shutdown, start: int, max_chunk: int, registry,
        trace: Optional[TraceConfig] = None,
    ) -> None:
        self._exit = 0
        self._thread = threading.Thread(
            target=self._run,
            args=(work, iterations, produce, fault_plan, shutdown, start,
                  max_chunk, registry, trace),
            name="pool-A",
            daemon=True,
        )

    def _run(self, work, iterations, produce, fault_plan, shutdown, start,
             max_chunk, registry, trace) -> None:
        try:
            producer_main(
                work, iterations, produce, fault_plan, shutdown,
                start=start, max_chunk=max_chunk, trace=trace,
                registry=registry, writer=WRITER_PRODUCER,
                close_channel=False,
            )
        except BaseException:
            logger.exception("pool producer thread failed")
            self._exit = 1
        finally:
            # The slot's work channel outlives this job; a closed tracer
            # must not ride into the next lease.
            work.tracer = None

    def start(self) -> None:
        self._thread.start()

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return None if self._thread.is_alive() else self._exit

    def terminate(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)


class _PoolWorker:
    """Parent-side record of one pool worker process."""

    def __init__(self, wid: int, process, conn, row_index: int) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        self.row_index = row_index
        self.leased_to: Optional["LeaseRuntime"] = None


class LeaseRuntime:
    """One job's claim on a slot plus some pool workers — the object the
    engine's ``runtime=`` parameter takes (see the contract documented on
    :class:`repro.exec.engine.ExecutionEngine`)."""

    def __init__(
        self, pool: "WorkerPool", slot: _Slot, members: List[_PoolWorker]
    ) -> None:
        self._pool = pool
        self.slot = slot
        self._members: Dict[int, _PoolWorker] = {w.wid: w for w in members}
        self._cancel = threading.Event()
        self._job: Optional[tuple] = None
        self._producer: Optional[_ThreadProducer] = None
        #: Per-tenant persistent speculation controller, set by the service
        #: before the engine is constructed (None = unthrottled).
        self.job_throttle: Any = None
        #: Per-job spool configuration, set by the service before the
        #: engine is constructed (None = untraced, the default).  Plain
        #: picklable data: it rides the lease message to every member.
        self.trace_config: Optional[TraceConfig] = None
        self.released = False

    # -- engine contract: shared primitives --------------------------------------

    @property
    def work(self) -> ProcessChannel:
        return self.slot.work

    @property
    def done(self) -> ProcessChannel:
        return self.slot.done

    @property
    def shutdown(self):
        return self.slot.shutdown

    @property
    def watermark(self):
        return self.slot.watermark

    @property
    def window(self):
        return self.slot.window

    @property
    def registry(self) -> MetricsRegistry:
        return self.slot.registry

    # -- engine contract: lifecycle ----------------------------------------------

    def start_producer(self, spec, *, start: int, batch_size: int,
                       fault_plan: Optional[FaultPlan]):
        if fault_plan is not None and fault_plan.producer_crash_at is not None:
            raise ValueError(
                "pool mode runs phase A as a thread in the server process; "
                "producer_crash_at would take the whole service down"
            )
        snapshot = CommittedStore(spec.shared_state).snapshot()
        self._job = (
            spec.work, spec.speculative, snapshot, fault_plan, batch_size,
            self.trace_config,
        )
        for worker in self._members.values():
            self._pool._send_lease(worker, self.slot, self._job)
        self._producer = _ThreadProducer(
            self.slot.work, spec.iterations, spec.produce, fault_plan,
            self.slot.shutdown, start, batch_size, self.slot.registry,
            trace=self.trace_config,
        )
        self._producer.start()
        return self._producer

    def workers(self) -> Dict[int, Any]:
        return {wid: w.process for wid, w in self._members.items()}

    def respawn(self) -> Tuple[int, Any]:
        worker = self._pool._respawn_into(self)
        self._members[worker.wid] = worker
        return worker.wid, worker.process

    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def teardown(self, producer, processes, done, join_timeout: float) -> None:
        self._pool._teardown_lease(self, producer, join_timeout)

    def halt(self, producer, processes, join_timeout: float) -> None:
        self._pool._halt_lease(self, producer, join_timeout)

    # -- service API --------------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation; the committer loop observes it
        at its next poll and takes the normal teardown path."""
        self._cancel.set()

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self._members)

    @property
    def worker_pids(self) -> List[int]:
        return sorted(
            w.process.pid for w in self._members.values()
            if w.process.pid is not None
        )


class WorkerPool:
    """A fixed-size pool of reusable phase-B processes with ``slots``
    concurrent job lanes.

    Thread-safe: the service's scheduler and several job-runner threads
    call in concurrently.  ``try_lease``/``release`` are the lifecycle;
    :class:`LeaseRuntime` handles everything mid-job.
    """

    def __init__(
        self,
        workers: int = 2,
        slots: int = 2,
        capacity: int = 16,
        batch_size: int = 8,
        policy: Optional[RobustnessPolicy] = None,
        start_method: Optional[str] = None,
        flush_interval: float = 0.005,
        transport: str = "pipe",
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one pool worker")
        if slots < 1:
            raise ValueError("need at least one slot")
        if transport not in ("pipe", "shm"):
            # Pool workers are separate processes by definition; the
            # in-process thread transport cannot reach them.
            raise ValueError(
                f"pool transport must be 'pipe' or 'shm', not {transport!r}"
            )
        self.policy = policy or RobustnessPolicy()
        self.capacity = capacity
        self.batch_size = min(batch_size, capacity)
        self.flush_interval = flush_interval
        self.transport = transport
        self.size = workers
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        # Registry rows every slot must be able to seat: the whole pool
        # plus every replacement the respawn budget could ever create.
        self._row_budget = workers + self.policy.max_respawns * slots + 2
        writer_rows = WRITER_WORKER0 + self._row_budget
        self._slots: List[_Slot] = [
            _Slot(k, self._ctx, capacity, workers, self.batch_size,
                  flush_interval, writer_rows, transport)
            for k in range(slots)
        ]
        self._free_slots: List[int] = list(range(slots))
        self._quarantined: List[int] = []
        self._slot_producers: Dict[int, Optional[_ThreadProducer]] = {}
        self._pool_shutdown = self._ctx.Event()
        self._workers: Dict[int, _PoolWorker] = {}
        self._free_rows = set(range(self._row_budget))
        self._next_wid = 0
        self._lock = threading.RLock()
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                return self
            for _ in range(self.size):
                self._spawn_worker()
            self._started = True
        return self

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop every worker and close the slot channels.  Idempotent."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            self._pool_shutdown.set()
            for slot in self._slots:
                slot.shutdown.set()
            for worker in self._workers.values():
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + join_timeout
            for worker in self._workers.values():
                worker.process.join(max(0.0, deadline - time.monotonic()))
            for worker in self._workers.values():
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(1.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._workers.clear()
            for slot in self._slots:
                slot.work.close()
                slot.done.close()

    # -- leasing ------------------------------------------------------------------

    def can_lease(self) -> bool:
        with self._lock:
            if not self._started or not self._free_slots:
                return False
            return any(
                w.leased_to is None and w.process.is_alive()
                for w in self._workers.values()
            )

    def try_lease(self, workers: Optional[int] = None) -> Optional[LeaseRuntime]:
        """Claim a free slot and up to ``workers`` idle pool workers for one
        job; None when no slot or no idle worker is available (not an
        error — the scheduler retries)."""
        with self._lock:
            if not self._started:
                raise RuntimeError("pool is not started")
            self._maintain_size()
            idle = [
                w for w in self._workers.values()
                if w.leased_to is None and w.process.is_alive()
            ]
            if not idle:
                return None
            slot = self._claim_slot()
            if slot is None:
                return None
            count = len(idle) if workers is None else max(
                1, min(workers, len(idle))
            )
            members = idle[:count]
            lease = LeaseRuntime(self, slot, members)
            for worker in members:
                worker.leased_to = lease
            return lease

    def release(self, lease: LeaseRuntime) -> None:
        """Return a finished lease's workers and slot to the pool.

        Scrubs the slot for reuse: joins the producer thread, settles the
        channels until the shared credit counters agree, zeroes counters
        and the registry, retires dead members, and tops the pool back up
        to its configured size.  A slot whose counters cannot be reset
        (a worker killed mid-update orphaned a counter lock — vanishingly
        rare) is quarantined rather than reused.
        """
        with self._lock:
            if lease.released:
                return
            lease.released = True
            slot = lease.slot
            producer = lease._producer
            if producer is not None:
                producer.join(0.5)
            self._settle_channel(slot.work)
            self._settle_channel(slot.done)
            for wid, worker in lease._members.items():
                if self._workers.get(wid) is not worker:
                    continue
                if worker.process.is_alive():
                    worker.leased_to = None
                else:
                    self._retire(worker)
            self._maintain_size()
            self._slot_producers[slot.index] = producer
            try:
                slot.work.reset_counters()
                slot.done.reset_counters()
                slot.registry.reset()
            except ChannelTimeout:
                logger.error(
                    "slot %d counters wedged (worker killed mid-update?); "
                    "quarantining the slot", slot.index,
                )
                self._quarantined.append(slot.index)
                return
            self._free_slots.append(slot.index)

    def _settle_channel(self, channel: ProcessChannel) -> None:
        """Drain until the shared credit counters agree (every flushed item
        consumed) — transport feeder threads lag their senders, so frames
        can surface shortly *after* all writers have exited.  Bounded: a
        worker killed between acquiring credit and enqueueing leaves the
        counters permanently apart, and the reset handles that."""
        deadline = time.monotonic() + _SETTLE_TIMEOUT
        while time.monotonic() < deadline:
            channel.drain()
            if channel.produces <= channel.consumes:
                break
            time.sleep(0.005)
        channel.reset_local()

    # -- internals (called by LeaseRuntime) ---------------------------------------

    def _send_lease(self, worker: _PoolWorker, slot: _Slot, job: tuple) -> None:
        work_fn, speculative, snapshot, fault_plan, max_chunk, trace = job
        # Drop any stale "released" a prior lease's teardown never consumed
        # so this lease's teardown cannot mistake it for its own.
        try:
            while worker.conn.poll(0):
                worker.conn.recv()
        except (EOFError, OSError):
            pass
        worker.conn.send(
            ("lease", slot.index, work_fn, speculative, snapshot,
             fault_plan, max_chunk, trace)
        )

    def _respawn_into(self, lease: LeaseRuntime) -> _PoolWorker:
        """A replacement for a worker that died mid-job: spawn fresh, lease
        immediately with the job's *initial* snapshot (see the module
        docstring's staleness note)."""
        with self._lock:
            worker = self._spawn_worker()
            worker.leased_to = lease
            self._send_lease(worker, lease.slot, lease._job)
            return worker

    def _teardown_lease(
        self, lease: LeaseRuntime, producer, join_timeout: float
    ) -> None:
        """Cooperative end-of-job: wait for every live member to send its
        release, draining the channels so none of them wedges on a full
        pipe; stragglers (a cancelled job's long task) are terminated and
        replaced at release time."""
        slot = lease.slot
        deadline = time.monotonic() + max(join_timeout, 1.0)
        if producer is not None:
            producer.join(max(0.0, deadline - time.monotonic()))
        self._await_released(lease, deadline)

    def _halt_lease(
        self, lease: LeaseRuntime, producer, join_timeout: float
    ) -> None:
        """Emergency stop (degradation, committer crash, a poison job's
        commit raising).  Cooperative first: shutdown is set and live
        members get the join window to exit ``_worker_loop`` on their own.
        Terminating a worker that is blocked inside a channel ``get``
        would orphan the channel's shared read lock and silently wedge the
        slot for every later lease (each subsequent job stalls at commit
        frontier zero until its watchdog degrades it to sequential) — so
        only members that fail to exit in time are terminated, and the
        release-time counter reset quarantines the slot if they wedged it.
        """
        slot = lease.slot
        slot.shutdown.set()
        deadline = time.monotonic() + max(join_timeout, 1.0)
        self._await_released(lease, deadline)
        if producer is not None:
            producer.join(max(0.1, deadline - time.monotonic()))
        slot.done.drain()
        slot.work.drain()

    def _await_released(self, lease: LeaseRuntime, deadline: float) -> None:
        """Drain the slot while waiting for every live member's "released"
        control message; terminate whoever misses the deadline."""
        slot = lease.slot
        pending = {
            wid: w for wid, w in lease._members.items()
            if w.process.is_alive()
        }
        while pending and time.monotonic() < deadline:
            slot.done.drain()
            slot.work.drain()
            for wid, worker in list(pending.items()):
                try:
                    while worker.conn.poll(0):
                        message = worker.conn.recv()
                        if message[0] == "released":
                            pending.pop(wid, None)
                            break
                except (EOFError, OSError):
                    pending.pop(wid, None)
            if pending:
                time.sleep(0.01)
        for worker in pending.values():
            logger.warning(
                "pool worker %d did not release slot %d in time; "
                "terminating", worker.wid, slot.index,
            )
            worker.process.terminate()
            worker.process.join(1.0)

    # -- roster management ---------------------------------------------------------

    def _spawn_worker(self) -> _PoolWorker:
        wid = self._next_wid
        self._next_wid += 1
        row_index = (
            min(self._free_rows) if self._free_rows else self._row_budget - 1
        )
        self._free_rows.discard(row_index)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=pool_worker_main,
            args=(wid, child_conn, tuple(self._slots), self._pool_shutdown,
                  WRITER_WORKER0 + row_index),
            name=f"pool-B{wid}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _PoolWorker(wid, process, parent_conn, row_index)
        self._workers[wid] = worker
        return worker

    def _retire(self, worker: _PoolWorker) -> None:
        worker.process.join(0)
        self._free_rows.add(worker.row_index)
        try:
            worker.conn.close()
        except OSError:
            pass
        self._workers.pop(worker.wid, None)

    def _maintain_size(self) -> None:
        """Retire dead idle workers and top back up to the configured size."""
        for worker in list(self._workers.values()):
            if worker.leased_to is None and not worker.process.is_alive():
                self._retire(worker)
        alive = sum(
            1 for w in self._workers.values() if w.process.is_alive()
        )
        for _ in range(max(0, self.size - alive)):
            self._spawn_worker()

    def _claim_slot(self) -> Optional[_Slot]:
        """Pop a free slot whose previous producer thread has exited, and
        arm it for the next job."""
        for position, index in enumerate(self._free_slots):
            previous = self._slot_producers.get(index)
            if previous is not None and previous.is_alive():
                continue  # stale phase-A thread still unwinding; skip
            self._free_slots.pop(position)
            slot = self._slots[index]
            slot.work.reset_local()
            slot.done.reset_local()
            slot.shutdown.clear()
            slot.watermark.value = 0
            slot.window.value = 0
            return slot
        return None

    # -- introspection -------------------------------------------------------------

    def worker_pids(self) -> Dict[int, int]:
        with self._lock:
            return {
                wid: w.process.pid
                for wid, w in self._workers.items()
                if w.process.is_alive()
            }

    def stats(self) -> dict:
        with self._lock:
            alive = [
                w for w in self._workers.values() if w.process.is_alive()
            ]
            return {
                "size": self.size,
                "transport": self.transport,
                "pids": sorted(w.process.pid for w in alive),
                "alive": len(alive),
                "idle": sum(1 for w in alive if w.leased_to is None),
                "leased": sum(1 for w in alive if w.leased_to is not None),
                "slots": len(self._slots),
                "slots_free": len(self._free_slots),
                "slots_quarantined": len(self._quarantined),
                "spawned_total": self._next_wid,
            }
