"""The job server: queue, fair dispatch, shared pool, drain, telemetry.

:class:`PipelineService` is the long-lived object behind ``python -m repro
serve``.  One dispatcher thread pulls jobs from the weighted round-robin
scheduler whenever the pool can lease, and each dispatched job runs in its
own runner thread: lease workers, run the engine against the lease, release
the lease, settle the books.  Admission, per-tenant state, and job records
all live under one lock + condition; the pool has its own lock (always
acquired *after* the service lock — that ordering is the no-deadlock rule).

Telemetry is three-layered, matching the rest of the repo:

- ``/metrics`` — service-level Prometheus exposition (per-tenant job
  counters, queue depth, pool occupancy, throttle windows) built with the
  same escaping helpers as :mod:`repro.obs.serve`;
- ``/health`` — per-tenant verdicts: a tenant is ``degraded`` while its
  persistent throttle sits at the serial floor, its last job stormed, or a
  *running* job's watchdog is currently storming/stalled; other tenants
  stay ``ok`` — tenant-scoped degradation, never service-wide panic;
- the watchdog's stall verdict on running jobs doubles as the admission
  controller's load-shedding input (429 + Retry-After while stalled).

Graceful shutdown (``request_drain``): new submissions get 503, queued
jobs are cancelled (kept, when durable — the journal will re-admit them),
running jobs get up to ``drain_timeout`` seconds to finish (then
cooperative cancellation), history is flushed, the pool and HTTP server
stop.  SIGTERM/SIGINT wiring lives in the CLI.

With ``state_dir`` set the service is *durable*
(:mod:`repro.service.durability`): every job transition is journaled
(submissions fsynced before the 202 is acknowledged), outputs and engine
checkpoints spill to an on-disk artifact store, and ``start()`` replays
the journal — re-admitting queued jobs in submission order and restarting
interrupted jobs from their committed-prefix checkpoint, bit-identical to
an uninterrupted run.  The durability plane also carries per-job retry
policy (bounded attempts, exponential backoff + deterministic jitter,
dead-letter for poison jobs), per-job deadlines cancelled through the
engine's cooperative path, and idempotency keys making client resubmits
after a crash exactly-once.
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.exec.engine import ExecutionEngine
from repro.exec.faults import RobustnessPolicy
from repro.obs.analyze import analyze_trace
from repro.obs.clock import now_ns
from repro.obs.events import EventKind
from repro.obs.export import to_chrome_trace
from repro.obs.history import append_record, make_record
from repro.obs.jobtrace import FlightRecorder, build_timeline, open_job_trace
from repro.obs.live import LiveConfig
from repro.obs.merge import merge_spool_dir
from repro.obs.registry import BUCKET_BOUNDS
from repro.obs.serve import escape_help, escape_label_value
from repro.resilience.checkpoint import CheckpointConfig, CheckpointError
from repro.service.durability import (
    ARTIFACT_DIR,
    ArtifactStore,
    JOURNAL_NAME,
    JobJournal,
    RecoveryReport,
    fold_records,
)
from repro.service.jobs import (
    Job,
    JobState,
    TERMINAL_STATES,
    resolve_iterations,
    compile_chaos,
    retry_delay,
)
from repro.service.pool import LeaseRuntime, WorkerPool
from repro.service.queue import (
    Admission,
    AdmissionConfig,
    AdmissionController,
    DEDUPLICATED,
)
from repro.service.scheduler import FairScheduler
from repro.service.tenants import TenantDirectory, TenantState

logger = logging.getLogger(__name__)

#: How often the dispatcher re-checks for runnable work when idle.
_DISPATCH_POLL = 0.05


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0
    pool_workers: int = 2
    slots: int = 2
    #: Workers leased per job.  None = an even split of the pool across
    #: the job slots (so concurrent jobs actually run concurrently); the
    #: pool clamps to what is idle either way.
    workers_per_job: Optional[int] = None
    capacity: int = 16
    batch_size: int = 8
    max_queued: int = 16
    tenant_queued_quota: int = 8
    tenant_running_quota: int = 1
    default_weight: int = 1
    weights: Dict[str, int] = field(default_factory=dict)
    drain_timeout: float = 10.0
    history_path: Optional[str] = None
    live_interval: float = 0.05
    policy: Optional[RobustnessPolicy] = None
    start_method: Optional[str] = None
    #: Channel wire backend for every slot: "pipe" or "shm" (pool workers
    #: are processes, so the in-process thread transport is rejected).
    transport: str = "pipe"
    #: Durability root (``--state-dir``).  None = the pre-durability
    #: in-memory server: no journal, no artifact spill, no recovery.
    state_dir: Optional[str] = None
    #: Commits between engine checkpoints for durable jobs; the committed
    #: prefix a restart can resume is at most this many commits stale.
    checkpoint_interval: int = 8
    #: Default ``max_attempts`` for jobs that do not set ``params.retry``
    #: (1 = a failure is terminal, the pre-durability behavior).
    default_max_attempts: int = 1
    #: Journal records at startup beyond which recovery compacts the
    #: journal to a snapshot (0 = auto: ``max(256, 8 * live jobs)``).
    compact_threshold: int = 0
    #: Trace *every* job end to end (``--trace-jobs``).  Off by default —
    #: spools cost a file per role per job; individual jobs opt in with
    #: ``params.trace`` regardless of this flag.
    trace_jobs: bool = False
    #: Post-mortem bundles retained per tenant (LRU by mtime).
    postmortem_keep: int = 8
    #: Flight-recorder ring capacity (recent job-plane events).
    flight_capacity: int = 256


class PipelineService:
    """The multi-tenant pipeline-as-a-service core (HTTP face in
    :mod:`repro.service.api`)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.policy = cfg.policy or RobustnessPolicy()
        self.pool = WorkerPool(
            workers=cfg.pool_workers,
            slots=cfg.slots,
            capacity=cfg.capacity,
            batch_size=cfg.batch_size,
            policy=self.policy,
            start_method=cfg.start_method,
            transport=cfg.transport,
        )
        self.scheduler = FairScheduler()
        self.admission = AdmissionController(
            AdmissionConfig(
                max_queued=cfg.max_queued,
                tenant_queued_quota=cfg.tenant_queued_quota,
                tenant_running_quota=cfg.tenant_running_quota,
            )
        )
        self.tenants = TenantDirectory(
            pool_workers=cfg.pool_workers,
            capacity=cfg.capacity,
            batch_size=cfg.batch_size,
            default_weight=cfg.default_weight,
            weights=cfg.weights,
        )
        self.workers_per_job = cfg.workers_per_job or max(
            1, cfg.pool_workers // max(1, cfg.slots)
        )
        self.jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._job_seq = 0
        self._draining = False
        self._stopping = False
        self._drained = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._runners: List[threading.Thread] = []
        self._api_server = None
        self.started_unix: Optional[float] = None
        # -- durability plane ----------------------------------------------
        self.durable = cfg.state_dir is not None
        self.journal: Optional[JobJournal] = None
        self.artifacts: Optional[ArtifactStore] = None
        self.recovery = RecoveryReport()
        #: ``(tenant, key) -> job_id`` — rebuilt from the journal on start.
        self._idempotency: Dict[Tuple[str, str], str] = {}
        #: Retry waits: ``(eta_unix, job)``; promoted into the scheduler by
        #: the dispatcher once the backoff elapses.
        self._retries: List[Tuple[float, Job]] = []
        #: Recent dispatch instants (monotonic) → observed dispatch rate
        #: feeding Retry-After on 429.
        self._dispatch_times: Deque[float] = deque(maxlen=32)
        # -- tracing plane -------------------------------------------------
        #: Bounded ring of recent job-plane events; snapshotted into every
        #: post-mortem bundle.
        self.flight = FlightRecorder(cfg.flight_capacity)
        #: Recent journal records (mirrored even when not durable) — the
        #: "journal tail" a post-mortem bundle carries.
        self._journal_tail: Deque[dict] = deque(maxlen=64)

    # -- lifecycle ----------------------------------------------------------------

    def start(self, serve_http: bool = True) -> "PipelineService":
        if self.durable:
            self._open_state()  # replay before anything can dispatch
        self.pool.start()
        self.started_unix = time.time()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatch", daemon=True
        )
        self._dispatcher.start()
        if serve_http:
            from repro.service.api import ApiServer

            self._api_server = ApiServer(
                self, host=self.config.host, port=self.config.port
            ).start()
        return self

    @property
    def port(self) -> Optional[int]:
        return self._api_server.port if self._api_server else None

    def request_drain(self) -> None:
        """Flip into draining: refuse new work, let running jobs finish.
        Queued jobs are cancelled in the in-memory server (they would be
        lost anyway); a durable server *keeps* them — they are safe in the
        journal and the next start re-admits them in order.  Idempotent,
        signal-handler safe."""
        with self._wake:
            if self._draining:
                return
            self._draining = True
            if not self.durable:
                for job in self.scheduler.queued_jobs():
                    self._finish_cancelled_queued(
                        job, reason="server draining"
                    )
            self._wake.notify_all()
        logger.info("drain requested: rejecting new submissions")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every running job has finished (True) or the drain
        timeout passed (False) — in which case stragglers are cancelled
        cooperatively and given a short grace period."""
        self.request_drain()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        clean = self._await_idle(deadline)
        if not clean:
            # Not clean — jobs had to be cancelled.  Still wait out the
            # cancellations so teardown never races running leases.
            with self._wake:
                for job in self._running_jobs():
                    logger.warning(
                        "drain timeout: cancelling running job %s", job.id
                    )
                    job.cancel_requested = True
                    if job.lease is not None:
                        job.lease.cancel()
            self._await_idle(time.monotonic() + 5.0)
        return clean

    def _await_idle(self, deadline: float) -> bool:
        with self._wake:
            while self._running_jobs():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(min(remaining, 0.1))
            return True

    def stop(self) -> None:
        """Stop everything (after a drain for graceful paths).  Idempotent."""
        with self._wake:
            if self._stopping:
                return
            self._stopping = True
            self._wake.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        for runner in list(self._runners):
            runner.join(timeout=5.0)
        if self._api_server is not None:
            self._api_server.stop()
            self._api_server = None
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()
        self._drained.set()

    def drain_and_stop(self, timeout: Optional[float] = None) -> bool:
        clean = self.drain(timeout)
        self.stop()
        return clean

    # -- durability: open + recover ---------------------------------------------

    def _open_state(self) -> None:
        """Open the journal + artifact store and replay prior state.

        Runs before the dispatcher exists, so no lock games: queued and
        interrupted jobs land back in the scheduler in their original
        submission order, interrupted jobs carrying a checkpoint resume
        from their committed prefix at next dispatch.
        """
        state_dir = self.config.state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.artifacts = ArtifactStore(os.path.join(state_dir, ARTIFACT_DIR))
        self.journal, records = JobJournal.open(
            os.path.join(state_dir, JOURNAL_NAME)
        )
        self.recovery.journal = self.journal.stats
        replayed = fold_records(records)
        for entry in replayed:
            try:
                self._recover_one(entry)
            except Exception:
                self.recovery.errors += 1
                logger.exception(
                    "recovery: could not rebuild job %s", entry.job_id
                )
        if self.recovery.recovered or self.recovery.terminal:
            logger.info(
                "recovery: %d requeued, %d resumable, %d restarted, "
                "%d terminal reloaded, %d errors",
                self.recovery.requeued, self.recovery.resumed,
                self.recovery.restarted, self.recovery.terminal,
                self.recovery.errors,
            )
        threshold = self.config.compact_threshold or max(
            256, 8 * max(1, len(self.jobs))
        )
        if self.journal.stats.records > threshold:
            self._compact_journal()

    def _recover_one(self, entry) -> None:
        """Rebuild one journaled job into live state."""
        payload = entry.payload
        tenant_name = payload["tenant"]
        workload = payload["workload"]
        params = payload.get("params") or {}
        iterations = resolve_iterations(workload, params)
        job = Job(
            job_id=entry.job_id,
            tenant=tenant_name,
            workload=workload,
            params=params,
            iterations=iterations,
            fault_plan=compile_chaos(params.get("chaos"), iterations),
            idempotency_key=payload.get("idempotency_key"),
            submitted_unix=payload.get("submitted_unix"),
        )
        self._apply_default_retry(job)
        job.attempts = entry.attempts
        self._job_seq = max(self._job_seq, self._parse_seq(entry.job_id))
        tenant = self.tenants.get_or_create(tenant_name)
        tenant.submitted += 1
        if job.idempotency_key:
            self._idempotency[(tenant_name, job.idempotency_key)] = job.id
        self.jobs[job.id] = job
        if entry.terminal:
            self._recover_terminal(job, tenant, entry)
            return
        # Queued or interrupted: both go back into the scheduler, in the
        # order this method is called (= original submission order).
        job.recovered = True
        tenant.recovered += 1
        interrupted = entry.interrupted
        if job.deadline_exceeded:
            self._journal(
                "cancelled", job.id,
                {"reason": "deadline exceeded during downtime"}, fsync=True,
            )
            job.deadline_fired = True
            self._finish_cancelled_queued(
                job, reason="deadline exceeded during downtime",
                journal=False,
            )
            tenant.deadline_cancelled += 1
            return
        if interrupted:
            if self.artifacts.has_checkpoint(job.id):
                self.recovery.resumed += 1
            else:
                self.recovery.restarted += 1
        else:
            self.recovery.requeued += 1
        self._journal(
            "queued", job.id,
            {"recovered": True, "interrupted": interrupted,
             "attempt": job.attempts},
        )
        self._maybe_open_trace(job)
        self.flight.note(
            "recovered", job.id, tenant_name, interrupted=interrupted
        )
        self.scheduler.enqueue(job)

    def _recover_terminal(self, job: Job, tenant: TenantState, entry) -> None:
        """Reload a finished job's record so status/result survive restarts."""
        state = {
            "completed": JobState.DONE,
            "failed": JobState.FAILED,
            "cancelled": JobState.CANCELLED,
            "dead_letter": JobState.DEAD_LETTER,
        }[entry.last_event]
        job.state = state
        job.error = entry.error
        job.finished_unix = job.submitted_unix  # best effort; not journaled
        job.resumed_from = entry.resumed_from or 0
        if state is JobState.DONE:
            if not self.artifacts.has_result(job.id):
                # WAL ordering says this cannot happen (artifact lands
                # before the completed record); treat it as a failed job
                # rather than serve a missing result.
                job.state = JobState.FAILED
                job.error = "output artifact missing after recovery"
                tenant.failed += 1
                self.recovery.errors += 1
                return
            job.output_spilled = True
            job.metrics = self.artifacts.load_metrics(job.id)
            tenant.completed += 1
        elif state is JobState.FAILED:
            tenant.failed += 1
        elif state is JobState.CANCELLED:
            tenant.cancelled += 1
        else:
            tenant.dead_letter += 1
        self.recovery.terminal += 1

    def _compact_journal(self) -> None:
        """Rewrite the journal as a snapshot of current job state."""
        snapshot: List[Tuple[str, str, dict]] = []
        terminal_event = {
            JobState.DONE: "completed",
            JobState.FAILED: "failed",
            JobState.CANCELLED: "cancelled",
            JobState.DEAD_LETTER: "dead_letter",
        }
        for job in self.jobs.values():
            snapshot.append(("submitted", job.id, self._journal_payload(job)))
            if job.state in TERMINAL_STATES:
                data = {}
                if job.error:
                    data["error"] = job.error
                if job.resumed_from:
                    data["resumed_from"] = job.resumed_from
                snapshot.append((terminal_event[job.state], job.id, data))
            elif job.state is JobState.RUNNING or job.attempts:
                snapshot.append(
                    ("queued", job.id,
                     {"recovered": True, "attempt": job.attempts})
                )
        self.journal.compact(snapshot)
        logger.info(
            "journal compacted to %d record(s)", len(snapshot)
        )

    @staticmethod
    def _parse_seq(job_id: str) -> int:
        try:
            return int(job_id.lstrip("j"))
        except ValueError:
            return 0

    @staticmethod
    def _journal_payload(job: Job) -> dict:
        payload = {
            "tenant": job.tenant,
            "workload": job.workload,
            "params": job.params,
            "submitted_unix": job.submitted_unix,
        }
        if job.idempotency_key:
            payload["idempotency_key"] = job.idempotency_key
        return payload

    def _apply_default_retry(self, job: Job) -> None:
        if "retry" not in job.params and self.config.default_max_attempts > 1:
            job.max_attempts = self.config.default_max_attempts

    def _journal(
        self, event: str, job_id: str, data: dict, fsync: bool = False
    ) -> None:
        """Append one journal record (when durable) and mirror it into the
        in-memory tail that post-mortem bundles capture — so even the
        in-memory server has a transition history to bundle."""
        record = {"event": event, "job": job_id, "unix_s": round(time.time(), 3)}
        if data:
            record["data"] = data
        self._journal_tail.append(record)
        if self.journal is not None:
            self.journal.append(event, job_id, data, fsync=fsync)

    # -- tracing plane ------------------------------------------------------------

    #: ADMIT span ``detail`` codes — how the traced job ended.
    _ADMIT_DETAIL = {
        JobState.DONE: 0,
        JobState.FAILED: 1,
        JobState.CANCELLED: 2,
        JobState.DEAD_LETTER: 3,
    }

    def _trace_requested(self, job: Job) -> bool:
        return bool(job.params.get("trace", False)) or self.config.trace_jobs

    def _maybe_open_trace(self, job: Job) -> None:
        """Open the job's service spool at admission.  Tracing is strictly
        best-effort: any failure logs and leaves the job untraced rather
        than failing the submission."""
        if not self._trace_requested(job):
            return
        try:
            if self.artifacts is not None:
                spool_dir = self.artifacts.trace_spool_dir(job.id)
                ephemeral = False
            else:
                spool_dir = tempfile.mkdtemp(prefix=f"repro-{job.id}-trace-")
                ephemeral = True
            trace = open_job_trace(job.id, job.tenant, spool_dir)
            if not trace.enabled:
                return
            job.trace = trace
            job.trace_dir = spool_dir
            job.trace_ephemeral = ephemeral
            # ADMIT is the job-root span (admission -> terminal); each
            # attempt's QUEUE_WAIT nests inside it, engine phases inside
            # the lease window.
            trace.begin("admit")
            trace.begin("queue_wait")
        except Exception:
            logger.exception("job %s: trace setup failed", job.id)

    def _finalize_trace(self, job: Job) -> None:
        """Close the job's service spool and merge every spool in its
        trace directory — service stages stitched onto engine phases —
        into the Chrome trace + compact timeline artifacts."""
        trace = job.trace
        if trace is None:
            return
        try:
            trace.end(
                "admit", EventKind.ADMIT, arg=max(1, job.attempts),
                detail=self._ADMIT_DETAIL.get(job.state, 0),
            )
            trace.close()
            merged = merge_spool_dir(job.trace_dir)
            chrome = to_chrome_trace(merged)
            timeline = build_timeline(
                merged, job_id=job.id, tenant=job.tenant,
                attempts=job.attempts,
            )
            job.timeline_data = timeline
            try:
                analysis = analyze_trace(merged, metrics=job.metrics)
                job.bottleneck_data = analysis.to_json()
            except Exception:
                # Diagnosis is best-effort; the trace itself still ships.
                logger.exception("job %s: bottleneck analysis failed", job.id)
            if self.artifacts is not None:
                self.artifacts.put_trace(job.id, chrome, timeline)
                if job.bottleneck_data is not None:
                    self.artifacts.put_bottleneck(job.id, job.bottleneck_data)
                # The artifact store owns the (large) Chrome trace now;
                # only the compact timeline stays resident.
                job.trace_data = None
            else:
                job.trace_data = chrome
        except Exception:
            logger.exception("job %s: trace finalize failed", job.id)
        finally:
            # Spool dir first (the merge already consumed it), then clear
            # ``job.trace`` last: readers treat a live ``job.trace`` as
            # "merge in flight" (the API answers 409) until artifacts —
            # and the cleanup — are ready.
            if job.trace_ephemeral and job.trace_dir:
                shutil.rmtree(job.trace_dir, ignore_errors=True)
            job.trace = None

    def _snapshot_postmortem(
        self, job: Job, tenant: TenantState, reason: str
    ) -> None:
        """Bundle the crash context — flight-recorder ring, journal tail,
        job + tenant snapshots, throttle state, pool occupancy, the job's
        timeline — and persist it per tenant (LRU-capped)."""
        throttle = tenant.throttle
        with self._lock:
            bundle = {
                "reason": reason,
                "captured_unix": round(time.time(), 3),
                "job": job.to_json(full=True),
                "tenant": tenant.to_json(),
                "throttle": {
                    "window": throttle.window,
                    "max_window": throttle.max_window,
                    "shrinks": throttle.shrinks,
                    "grows": throttle.grows,
                    "min_window_seen": throttle.min_window_seen,
                    "at_floor": throttle.at_floor,
                },
                "flight_recorder": self.flight.snapshot(),
                "journal_tail": list(self._journal_tail),
                "queue_depth": self.scheduler.depth(),
                "pool": self.pool.stats(),
                "timeline": job.timeline_data,
                "bottleneck": job.bottleneck_data,
            }
            tenant.postmortems += 1
        if self.artifacts is None:
            job.postmortem_data = bundle
            self.flight.note("postmortem", job.id, tenant.name, reason=reason)
            return
        try:
            name = f"{job.id}-a{max(1, job.attempts)}-" + reason.replace(" ", "-")
            job.postmortem_path = self.artifacts.put_postmortem(
                tenant.name, name, bundle, keep=self.config.postmortem_keep
            )
            self.flight.note("postmortem", job.id, tenant.name, reason=reason)
        except Exception:
            logger.exception("job %s: post-mortem snapshot failed", job.id)

    def job_trace_json(self, job: Job) -> Optional[dict]:
        """The job's merged Chrome trace (None until finalized)."""
        if job.trace_data is not None:
            return job.trace_data
        if self.artifacts is not None:
            return self.artifacts.load_trace(job.id)
        return None

    def job_timeline_json(self, job: Job) -> Optional[dict]:
        """The job's compact timeline (None until finalized)."""
        if job.timeline_data is not None:
            return job.timeline_data
        if self.artifacts is not None:
            return self.artifacts.load_timeline(job.id)
        return None

    def job_bottleneck_json(self, job: Job) -> Optional[dict]:
        """The job's critical-path bottleneck analysis (None until a
        traced job finalizes; survives restarts via the artifact store)."""
        if job.bottleneck_data is not None:
            return job.bottleneck_data
        if self.artifacts is not None:
            return self.artifacts.load_bottleneck(job.id)
        return None

    def job_postmortem_json(self, job: Job) -> Optional[dict]:
        """The job's post-mortem bundle, if one was snapshotted."""
        if job.postmortem_data is not None:
            return job.postmortem_data
        if job.postmortem_path and self.artifacts is not None:
            return self.artifacts.load_postmortem(job.postmortem_path)
        return None

    # -- submissions ----------------------------------------------------------------

    def submit(
        self,
        tenant_name: str,
        workload: str,
        params: Optional[dict] = None,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[Optional[Job], Admission]:
        """Admit one job (or refuse it).  Raises ``ValueError`` on a
        malformed request — the API layer maps that to 400.

        ``idempotency_key`` makes the submission exactly-once per tenant:
        a resubmit with the same key (e.g. a client retrying after a
        server crash) returns the existing job instead of a duplicate —
        the key→job mapping survives restarts via the journal.
        """
        params = params or {}
        if not tenant_name or not isinstance(tenant_name, str):
            raise ValueError("tenant must be a non-empty string")
        if idempotency_key is not None and (
            not isinstance(idempotency_key, str)
            or not idempotency_key or len(idempotency_key) > 256
        ):
            raise ValueError(
                "idempotency_key must be a non-empty string (<= 256 chars)"
            )
        iterations = resolve_iterations(workload, params)
        fault_plan = compile_chaos(params.get("chaos"), iterations)
        with self._wake:
            if idempotency_key is not None:
                existing_id = self._idempotency.get(
                    (tenant_name, idempotency_key)
                )
                if existing_id is not None:
                    return self.jobs[existing_id], DEDUPLICATED
            tenant = self.tenants.get_or_create(tenant_name)
            decision = self.admission.admit(
                depth=self.scheduler.depth(),
                tenant_queued=self.scheduler.depth(tenant_name),
                tenant_running=tenant.running,
                draining=self._draining or self._stopping,
                shedding=self._shedding(),
                dispatch_rate=self._dispatch_rate(),
            )
            if not decision.accepted:
                tenant.rejected += 1
                self.flight.note(
                    "rejected", tenant=tenant_name,
                    status=decision.status, reason=decision.reason,
                )
                return None, decision
            self._job_seq += 1
            job = Job(
                job_id=f"j{self._job_seq:05d}",
                tenant=tenant_name,
                workload=workload,
                params=params,
                iterations=iterations,
                fault_plan=fault_plan,
                idempotency_key=idempotency_key,
            )
            self._apply_default_retry(job)
            # WAL: the submission is on stable storage before the
            # client sees its 202 — a crash one instruction after the
            # acknowledgment loses nothing.
            self._journal(
                "submitted", job.id, self._journal_payload(job), fsync=True
            )
            self.jobs[job.id] = job
            if idempotency_key is not None:
                self._idempotency[(tenant_name, idempotency_key)] = job.id
            tenant.submitted += 1
            self._maybe_open_trace(job)
            self.flight.note(
                "admitted", job.id, tenant_name,
                workload=workload, traced=job.trace is not None,
            )
            self.scheduler.enqueue(job)
            self._wake.notify_all()
            return job, decision

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job: queued jobs die immediately, running jobs get the
        cooperative flag (the committer observes it at its next poll).
        Returns the resulting state string, or None for an unknown id."""
        with self._wake:
            job = self.jobs.get(job_id)
            if job is None:
                return None
            if job.state is JobState.QUEUED:
                self._finish_cancelled_queued(job, reason="cancelled by client")
                self._wake.notify_all()
                return job.state.value
            if job.state is JobState.RUNNING:
                job.cancel_requested = True
                if job.lease is not None:
                    job.lease.cancel()
                return "cancelling"
            return job.state.value

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            return [
                job for job in self.jobs.values()
                if tenant is None or job.tenant == tenant
            ]

    def job_output(self, job: Job):
        """A finished job's output, loading it back from the artifact
        store if it was spilled out of memory."""
        if job.output_spilled and self.artifacts is not None:
            try:
                return self.artifacts.load_output(job.id)
            except Exception:
                logger.exception("job %s: artifact read failed", job.id)
                return None
        return job.output

    # -- dispatch ----------------------------------------------------------------

    def _eligible(self, tenant_name: str) -> bool:
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            return False
        return tenant.running < self.config.tenant_running_quota

    def _weight_of(self, tenant_name: str) -> int:
        tenant = self.tenants.get(tenant_name)
        return tenant.weight if tenant is not None else 1

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                if self._stopping:
                    return
                self._tick()
                job = None
                pick_t0 = now_ns()
                if not self._draining and self.pool.can_lease():
                    job = self.scheduler.take(self._eligible, self._weight_of)
                pick_t1 = now_ns()
                if job is None:
                    self._wake.wait(_DISPATCH_POLL)
                    continue
                depth = self.scheduler.depth()
            lease_t0 = now_ns()
            lease = self.pool.try_lease(self.workers_per_job)
            with self._wake:
                if lease is None:
                    # Lost the race for the last slot; retry shortly.
                    self.scheduler.push_front(job)
                    self._wake.wait(_DISPATCH_POLL)
                    continue
                if job.cancel_requested or job.state is not JobState.QUEUED:
                    self.pool.release(lease)
                    continue
                tenant = self.tenants.get_or_create(job.tenant)
                job.state = JobState.RUNNING
                job.started_unix = time.time()
                job.lease = lease
                job.attempts += 1
                tenant.running += 1
                tenant.record_sched_pick((pick_t1 - pick_t0) / 1e9)
                wait_s = job.queue_wait_s or 0.0
                if job.trace is not None:
                    job.trace.span(
                        EventKind.SCHED_PICK, pick_t0, pick_t1,
                        arg=job.attempts, arg2=depth,
                    )
                    # QUEUE_WAIT ends exactly where SCHED_PICK begins —
                    # contiguous stages, no overlap on the timeline.
                    span_s = job.trace.end(
                        "queue_wait", EventKind.QUEUE_WAIT,
                        arg=job.attempts, at_ns=pick_t0,
                    )
                    if span_s > 0.0:
                        # The same measurement feeds the trace span and
                        # the /metrics histogram, so the two agree.
                        wait_s = span_s
                tenant.record_queue_wait(wait_s)
                self._dispatch_times.append(time.monotonic())
                self._journal(
                    "leased", job.id,
                    {"workers": list(lease.worker_ids),
                     "attempt": job.attempts},
                )
                if job.trace is not None:
                    job.trace.span(
                        EventKind.LEASE_DISPATCH, lease_t0, now_ns(),
                        arg=job.attempts, arg2=len(lease.worker_ids),
                    )
                    job.trace.flush()
                self.flight.note(
                    "leased", job.id, job.tenant,
                    attempt=job.attempts, workers=list(lease.worker_ids),
                )
                runner = threading.Thread(
                    target=self._run_job, args=(job, lease),
                    name=f"service-{job.id}", daemon=True,
                )
                self._runners.append(runner)
                self._runners = [t for t in self._runners if t.is_alive()]
            runner.start()

    def _tick(self) -> None:
        """Dispatcher housekeeping, under the lock: promote retries whose
        backoff elapsed, enforce deadlines on queued and running jobs."""
        now = time.time()
        if self._retries:
            due = [(eta, job) for eta, job in self._retries if eta <= now]
            if due:
                self._retries = [
                    entry for entry in self._retries if entry[0] > now
                ]
                for _, job in due:
                    if job.state is JobState.QUEUED and not job.cancel_requested:
                        if job.trace is not None:
                            job.trace.end(
                                "retry_backoff", EventKind.RETRY_BACKOFF,
                                arg=job.attempts,
                            )
                            job.trace.begin("queue_wait")
                        self.scheduler.enqueue(job)
        for job in list(self.jobs.values()):
            if job.deadline_unix is None or now <= job.deadline_unix:
                continue
            if job.state is JobState.QUEUED and not job.cancel_requested:
                job.deadline_fired = True
                self._finish_cancelled_queued(job, reason="deadline exceeded")
                self.tenants.get_or_create(job.tenant).deadline_cancelled += 1
            elif job.state is JobState.RUNNING and not job.cancel_requested:
                # Cooperative: the committer observes the cancel at its
                # next poll and the job finishes CANCELLED, not killed.
                logger.info("job %s passed its deadline; cancelling", job.id)
                job.deadline_fired = True
                job.cancel_requested = True
                if job.lease is not None:
                    job.lease.cancel()

    def _dispatch_rate(self) -> Optional[float]:
        """Observed dispatches/second over the recent window (None until
        at least two dispatches landed within the last 30 s)."""
        now = time.monotonic()
        recent = [t for t in self._dispatch_times if now - t <= 30.0]
        if len(recent) < 2:
            return None
        span = now - recent[0]
        if span <= 0.0:
            return None
        return len(recent) / span

    def _run_engine(
        self, job: Job, lease: LeaseRuntime, allow_resume: bool = True
    ):
        """One engine attempt for a job.  Durable servers checkpoint the
        committed prefix into the job's artifact directory and resume from
        an existing checkpoint (a prior attempt's, or a prior *server's*)."""
        checkpoints = None
        resume_from = None
        if self.durable:
            path = self.artifacts.checkpoint_path(job.id)
            checkpoints = CheckpointConfig(
                interval=self.config.checkpoint_interval, path=path, keep=1
            )
            if allow_resume and os.path.exists(path):
                resume_from = path
        trace_config = None
        if job.trace is not None and job.trace.enabled:
            trace_config = job.trace.context.config
        # Two consumers: the engine opens the in-server producer/committer
        # spools from ``trace=``; the lease carries the config across the
        # process boundary so pool workers spool into the same directory.
        lease.trace_config = trace_config
        engine = ExecutionEngine(
            workers=max(1, len(lease.worker_ids)),
            capacity=self.config.capacity,
            batch_size=self.config.batch_size,
            policy=self.policy,
            fault_plan=job.fault_plan,
            live=LiveConfig(interval=self.config.live_interval),
            checkpoints=checkpoints,
            trace=trace_config,
            runtime=lease,
        )
        job.engine = engine
        return engine.run(job.build_spec(), resume_from=resume_from)

    def _run_job(self, job: Job, lease: LeaseRuntime) -> None:
        tenant = self.tenants.get_or_create(job.tenant)
        lease.job_throttle = tenant.throttle
        error: Optional[str] = None
        result = None
        try:
            try:
                result = self._run_engine(job, lease)
            except CheckpointError as exc:
                # A stale or incompatible checkpoint must cost one fresh
                # run, never wedge the job.
                logger.warning(
                    "job %s: checkpoint unusable (%s); running fresh",
                    job.id, exc,
                )
                self.artifacts.discard_checkpoint(job.id)
                result = self._run_engine(job, lease, allow_resume=False)
        except BaseException as exc:  # a job must never kill the server
            logger.exception("job %s failed", job.id)
            error = repr(exc)
        finally:
            self.pool.release(lease)
        spilled = False
        if (
            error is None
            and self.artifacts is not None
            and not result.metrics.cancelled
        ):
            # WAL ordering: the output artifact is durable *before* the
            # journal's completed record — replay never acknowledges a
            # result that is not on disk.
            persist_t0 = now_ns()
            try:
                self.artifacts.put_result(
                    job.id, result.output, result.metrics.to_json()
                )
                spilled = True
            except Exception:
                logger.exception("job %s: artifact write failed", job.id)
            if job.trace is not None:
                job.trace.span(
                    EventKind.ARTIFACT_PERSIST, persist_t0, now_ns(),
                    arg=job.attempts,
                )
        with self._wake:
            job.finished_unix = time.time()
            job.lease = None
            job.engine = None
            tenant.running -= 1
            was_degraded = tenant.degraded
            if error is not None:
                self._finish_failed(job, tenant, error)
            else:
                metrics = result.metrics
                job.metrics = metrics.to_json()
                job.resumed_from = getattr(metrics, "resumed_from", 0) or 0
                if metrics.cancelled or job.cancel_requested:
                    job.state = JobState.CANCELLED
                    tenant.cancelled += 1
                    if job.deadline_fired:
                        tenant.deadline_cancelled += 1
                    self._journal(
                        "cancelled", job.id,
                        {"reason": "deadline exceeded"
                         if job.deadline_fired else "cancelled by client"},
                        fsync=True,
                    )
                    if self.artifacts is not None:
                        self.artifacts.discard_checkpoint(job.id)
                else:
                    job.state = JobState.DONE
                    if spilled:
                        # The artifact store owns the output now; the
                        # server's resident set stays flat under history.
                        job.output = None
                        job.output_spilled = True
                    else:
                        job.output = result.output
                    tenant.completed += 1
                    self._journal(
                        "completed", job.id,
                        {"attempt": job.attempts,
                         "resumed_from": job.resumed_from},
                        fsync=True,
                    )
                    if self.artifacts is not None:
                        self.artifacts.discard_checkpoint(job.id)
                tenant.committed += metrics.commits
                tenant.conflicts += metrics.conflicts
                tenant.serial_reexec += metrics.serial_reexecutions
                watchdog = metrics.watchdog or {}
                # A storm is either what the live watchdog flagged or a
                # job whose end-to-end misspeculation rate crossed the
                # storm threshold (short jobs can finish between watchdog
                # samples — the rate check is sampling-independent).
                misspec = metrics.conflicts + metrics.serial_reexecutions
                storm_rate = (
                    metrics.commits > 0
                    and misspec >= max(4, metrics.commits // 3)
                )
                stormed = watchdog.get("storms", 0) > 0 or storm_rate
                if stormed:
                    tenant.storms += 1
                # Tenant-scoped degradation: sticky while storms continue
                # or the throttle is pinned serial; cleared by a clean job.
                tenant.degraded = stormed or tenant.throttle.at_floor
            self._wake.notify_all()
        # -- trace + post-mortem, outside the lock (merging spools and
        # writing bundles must never block admission or dispatch) --------
        terminal = job.state in TERMINAL_STATES
        if terminal:
            self._finalize_trace(job)
            self.flight.note(
                "finished", job.id, job.tenant,
                state=job.state.value, attempt=job.attempts,
                error=(job.error or "")[:200],
            )
        if job.state in (JobState.FAILED, JobState.DEAD_LETTER):
            self._snapshot_postmortem(job, tenant, reason=job.state.value)
        elif tenant.degraded and not was_degraded:
            self._snapshot_postmortem(job, tenant, reason="tenant degraded")
        if error is None and self.config.history_path:
            self._append_history(job, result)

    def _finish_failed(
        self, job: Job, tenant: TenantState, error: str
    ) -> None:
        """Route a failed attempt: retry (bounded, backed off), dead-letter
        (retries exhausted), or plain FAILED (no retry policy).  Caller
        holds the lock."""
        job.error = error
        retryable = (
            not job.cancel_requested
            and not job.deadline_exceeded
            and job.attempts < job.max_attempts
        )
        if retryable:
            delay = retry_delay(job.id, job.attempts, job.retry_backoff)
            job.state = JobState.QUEUED
            job.started_unix = None
            job.finished_unix = None
            tenant.retries += 1
            self._journal(
                "retry_scheduled", job.id,
                {"attempt": job.attempts, "delay_s": round(delay, 3),
                 "error": error},
            )
            if job.trace is not None:
                job.trace.begin("retry_backoff")
            self.flight.note(
                "retry_scheduled", job.id, tenant.name,
                attempt=job.attempts, delay_s=round(delay, 3),
                error=error[:200],
            )
            # The checkpoint (if any) is deliberately kept: the retry
            # resumes from the committed prefix, it does not redo work.
            self._retries.append((time.time() + delay, job))
            logger.info(
                "job %s: attempt %d/%d failed; retrying in %.2fs",
                job.id, job.attempts, job.max_attempts, delay,
            )
            return
        if job.max_attempts > 1:
            job.state = JobState.DEAD_LETTER
            tenant.dead_letter += 1
            self._journal(
                "dead_letter", job.id,
                {"attempt": job.attempts, "error": error}, fsync=True,
            )
            logger.warning(
                "job %s: poison — %d attempt(s) exhausted, dead-lettered",
                job.id, job.attempts,
            )
        else:
            job.state = JobState.FAILED
            tenant.failed += 1
            self._journal("failed", job.id, {"error": error}, fsync=True)
        if self.artifacts is not None:
            self.artifacts.discard_checkpoint(job.id)

    def _finish_cancelled_queued(
        self, job: Job, reason: str, journal: bool = True
    ) -> None:
        """Terminal bookkeeping for a job cancelled before dispatch.
        Caller holds the lock.  The job is removed from the scheduler
        *eagerly* so its tenant's queued quota frees immediately — a
        tenant at quota can resubmit the moment its cancel returns."""
        self.scheduler.remove(job)
        self._retries = [(eta, j) for eta, j in self._retries if j is not job]
        job.state = JobState.CANCELLED
        job.finished_unix = time.time()
        job.error = reason
        tenant = self.tenants.get_or_create(job.tenant)
        tenant.cancelled += 1
        if journal:
            self._journal("cancelled", job.id, {"reason": reason}, fsync=True)
        if self.artifacts is not None:
            self.artifacts.discard_checkpoint(job.id)
        self.flight.note("cancelled", job.id, job.tenant, reason=reason)
        # Cancelled-while-queued is terminal: seal the (service-only)
        # trace here — a handful of spans, cheap under the lock.
        self._finalize_trace(job)

    def _running_jobs(self) -> List[Job]:
        return [
            job for job in self.jobs.values()
            if job.state is JobState.RUNNING
        ]

    def _shedding(self) -> bool:
        """Load-shedding input: is any running job's watchdog stalled?"""
        for job in self._running_jobs():
            engine = job.engine
            monitor = engine.live_monitor if engine is not None else None
            if monitor is not None and monitor.watchdog.stalled:
                return True
        return False

    def _append_history(self, job: Job, result) -> None:
        try:
            record = make_record(
                name=f"service:{job.workload}",
                metrics=result.metrics,
                label=job.id,
                ok=job.state is JobState.DONE,
                watchdog=result.metrics.watchdog,
                extra={"tenant": job.tenant, "job_state": job.state.value},
            )
            append_record(self.config.history_path, record)
        except Exception:
            logger.exception("history append failed for job %s", job.id)

    # -- telemetry ----------------------------------------------------------------

    def health_json(self) -> Tuple[int, dict]:
        """``(http_status, body)`` for ``/health``: per-tenant verdicts,
        degradation scoped to the tenant that earned it."""
        with self._lock:
            live_degraded = self._live_degraded_tenants()
            tenants = {}
            any_degraded = False
            for name, tenant in sorted(self.tenants.all().items()):
                degraded = tenant.degraded or name in live_degraded
                any_degraded = any_degraded or degraded
                tenants[name] = {
                    "status": "degraded" if degraded else "ok",
                    "running": tenant.running,
                    "queued": self.scheduler.depth(name),
                    "window": tenant.throttle.window,
                    "storms": tenant.storms,
                }
            pool = self.pool.stats()
            if self._draining or self._stopping:
                status = "draining"
            elif pool["alive"] == 0 or pool["slots_quarantined"] >= pool["slots"]:
                status = "failed"  # service-wide: nothing can run
            elif self._shedding():
                status = "shedding"
            else:
                # Tenant degradation is tenant-scoped by design: the
                # service stays "ok" so healthy tenants keep submitting.
                status = "ok"
            body = {
                "status": status,
                "draining": self._draining,
                "queue_depth": self.scheduler.depth(),
                "running": len(self._running_jobs()),
                "tenants": tenants,
                "pool": pool,
            }
            durability = {"enabled": self.durable}
            if self.durable:
                durability.update(
                    {
                        "state_dir": self.config.state_dir,
                        "recovery": self.recovery.to_json(),
                        "journal_appended": (
                            self.journal.appended if self.journal else 0
                        ),
                        "retries_pending": len(self._retries),
                        "artifacts": (
                            self.artifacts.stats() if self.artifacts else {}
                        ),
                    }
                )
            body["durability"] = durability
            http = 200 if status in ("ok", "shedding") else 503
            return http, body

    def _live_degraded_tenants(self) -> set:
        flagged = set()
        for job in self._running_jobs():
            engine = job.engine
            monitor = engine.live_monitor if engine is not None else None
            if monitor is None:
                continue
            watchdog = monitor.watchdog
            if watchdog.storming or watchdog.stalled:
                flagged.add(job.tenant)
        return flagged

    def snapshot_json(self) -> dict:
        with self._lock:
            return {
                "jobs": [
                    job.to_json() for job in self.jobs.values()
                ],
                "tenants": {
                    name: tenant.to_json()
                    for name, tenant in sorted(self.tenants.all().items())
                },
                "pool": self.pool.stats(),
                "queue_depth": self.scheduler.depth(),
                "draining": self._draining,
            }

    def metrics_text(self) -> str:
        """Service-level Prometheus exposition (per-tenant labels), in the
        same 0.0.4 text format as :func:`repro.obs.serve.prometheus_exposition`."""
        with self._lock:
            lines: List[str] = []

            def header(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
                lines.append(f"# TYPE {name} {kind}")

            def tenant_label(name: str, extra: str = "") -> str:
                label = f'tenant="{escape_label_value(name)}"'
                return "{" + label + (("," + extra) if extra else "") + "}"

            tenants = sorted(self.tenants.all().items())
            header(
                "repro_service_jobs_total", "counter",
                "Job lifecycle events per tenant.",
            )
            for name, tenant in tenants:
                for event, value in (
                    ("submitted", tenant.submitted),
                    ("rejected", tenant.rejected),
                    ("completed", tenant.completed),
                    ("failed", tenant.failed),
                    ("cancelled", tenant.cancelled),
                    ("dead_letter", tenant.dead_letter),
                ):
                    lines.append(
                        "repro_service_jobs_total"
                        + tenant_label(name, f'event="{event}"')
                        + f" {value}"
                    )
            for metric, help_text, getter in (
                ("repro_service_committed_total",
                 "Iterations committed across a tenant's finished jobs.",
                 lambda t: t.committed),
                ("repro_service_conflicts_total",
                 "Misspeculations across a tenant's finished jobs.",
                 lambda t: t.conflicts),
                ("repro_service_serial_reexec_total",
                 "Serial re-executions across a tenant's finished jobs.",
                 lambda t: t.serial_reexec),
                ("repro_service_storms_total",
                 "Finished jobs whose watchdog flagged a storm.",
                 lambda t: t.storms),
                ("repro_service_retries_total",
                 "Retry attempts scheduled after failed runs.",
                 lambda t: t.retries),
                ("repro_service_deadline_cancelled_total",
                 "Jobs cancelled because their deadline passed.",
                 lambda t: t.deadline_cancelled),
                ("repro_service_recovered_jobs_total",
                 "Jobs re-admitted or resumed by crash recovery.",
                 lambda t: t.recovered),
            ):
                header(metric, "counter", help_text)
                for name, tenant in tenants:
                    lines.append(
                        metric + tenant_label(name) + f" {getter(tenant)}"
                    )
            def stage_histogram(metric: str, help_text: str, getter) -> None:
                # Same golden format as repro.obs.serve: cumulative
                # ``le`` buckets on the engine's power-of-two bounds, so
                # job-plane and engine-plane latencies share one axis.
                header(metric, "histogram", help_text)
                for name, tenant in tenants:
                    hist = getter(tenant)
                    cumulative = 0
                    for bound, bucket_count in zip(
                        BUCKET_BOUNDS, hist.buckets
                    ):
                        cumulative += bucket_count
                        lines.append(
                            metric + "_bucket"
                            + tenant_label(name, f'le="{bound!r}"')
                            + f" {cumulative}"
                        )
                    lines.append(
                        metric + "_bucket"
                        + tenant_label(name, 'le="+Inf"')
                        + f" {hist.count}"
                    )
                    lines.append(
                        metric + "_sum" + tenant_label(name)
                        + f" {hist.total:.9g}"
                    )
                    lines.append(
                        metric + "_count" + tenant_label(name)
                        + f" {hist.count}"
                    )

            stage_histogram(
                "repro_service_queue_wait_seconds",
                "Admission-to-dispatch wait per tenant.",
                lambda t: t.queue_wait_hist,
            )
            stage_histogram(
                "repro_service_sched_pick_seconds",
                "One FairScheduler.take decision per dispatched job.",
                lambda t: t.sched_pick_hist,
            )
            header(
                "repro_service_postmortem_total", "counter",
                "Post-mortem bundles snapshotted per tenant.",
            )
            for name, tenant in tenants:
                lines.append(
                    "repro_service_postmortem_total" + tenant_label(name)
                    + f" {tenant.postmortems}"
                )
            for metric, help_text, getter in (
                ("repro_service_tenant_running",
                 "Running jobs per tenant.", lambda t: t.running),
                ("repro_service_tenant_queued",
                 "Queued jobs per tenant.",
                 lambda t: self.scheduler.depth(t.name)),
                ("repro_service_tenant_window",
                 "Current speculative window of the tenant's throttle.",
                 lambda t: t.throttle.window),
                ("repro_service_tenant_degraded",
                 "1 while the tenant is degraded (storming or serialized).",
                 lambda t: 1 if t.degraded else 0),
            ):
                header(metric, "gauge", help_text)
                for name, tenant in tenants:
                    lines.append(
                        metric + tenant_label(name) + f" {getter(tenant)}"
                    )
            pool = self.pool.stats()
            for metric, help_text, value in (
                ("repro_service_queue_depth",
                 "Live queued jobs.", self.scheduler.depth()),
                ("repro_service_running_jobs",
                 "Jobs currently running.", len(self._running_jobs())),
                ("repro_service_draining",
                 "1 while the server is draining.",
                 1 if self._draining else 0),
                ("repro_service_pool_workers_idle",
                 "Idle pool workers.", pool["idle"]),
                ("repro_service_pool_workers_leased",
                 "Leased pool workers.", pool["leased"]),
                ("repro_service_pool_slots_free",
                 "Free job slots.", pool["slots_free"]),
            ):
                header(metric, "gauge", help_text)
                lines.append(f"{metric} {value}")
            header(
                "repro_service_pool_spawned_total", "counter",
                "Pool worker processes spawned since start (respawns included).",
            )
            lines.append(
                f"repro_service_pool_spawned_total {pool['spawned_total']}"
            )
            header(
                "repro_service_flight_events_total", "counter",
                "Job-plane events noted by the flight recorder.",
            )
            lines.append(
                f"repro_service_flight_events_total {self.flight.events_noted}"
            )
            header(
                "repro_service_durable", "gauge",
                "1 when the server runs with a durable state dir.",
            )
            lines.append(f"repro_service_durable {1 if self.durable else 0}")
            if self.durable:
                recovery = self.recovery
                header(
                    "repro_service_recovery_total", "counter",
                    "Jobs handled by the last restart's journal replay.",
                )
                for outcome, value in (
                    ("requeued", recovery.requeued),
                    ("resumed", recovery.resumed),
                    ("restarted", recovery.restarted),
                    ("terminal", recovery.terminal),
                    ("errors", recovery.errors),
                ):
                    lines.append(
                        "repro_service_recovery_total"
                        f'{{outcome="{outcome}"}} {value}'
                    )
                journal_stats = recovery.journal
                for metric, help_text, value in (
                    ("repro_service_journal_records",
                     "Journal records replayed at the last start.",
                     journal_stats.records),
                    ("repro_service_journal_appended_total",
                     "Journal records appended since start.",
                     self.journal.appended if self.journal else 0),
                    ("repro_service_journal_torn_tail",
                     "1 if the last replay truncated a torn tail.",
                     journal_stats.torn_tail),
                    ("repro_service_journal_corrupt_records",
                     "Corrupt journal records skipped at the last replay.",
                     journal_stats.corrupt_records),
                    ("repro_service_journal_seq_gaps",
                     "Sequence gaps seen at the last replay.",
                     journal_stats.seq_gaps),
                    ("repro_service_retries_pending",
                     "Jobs waiting out a retry backoff.",
                     len(self._retries)),
                ):
                    header(metric, "gauge", help_text)
                    lines.append(f"{metric} {value}")
            return "\n".join(lines) + "\n"
