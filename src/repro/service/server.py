"""The job server: queue, fair dispatch, shared pool, drain, telemetry.

:class:`PipelineService` is the long-lived object behind ``python -m repro
serve``.  One dispatcher thread pulls jobs from the weighted round-robin
scheduler whenever the pool can lease, and each dispatched job runs in its
own runner thread: lease workers, run the engine against the lease, release
the lease, settle the books.  Admission, per-tenant state, and job records
all live under one lock + condition; the pool has its own lock (always
acquired *after* the service lock — that ordering is the no-deadlock rule).

Telemetry is three-layered, matching the rest of the repo:

- ``/metrics`` — service-level Prometheus exposition (per-tenant job
  counters, queue depth, pool occupancy, throttle windows) built with the
  same escaping helpers as :mod:`repro.obs.serve`;
- ``/health`` — per-tenant verdicts: a tenant is ``degraded`` while its
  persistent throttle sits at the serial floor, its last job stormed, or a
  *running* job's watchdog is currently storming/stalled; other tenants
  stay ``ok`` — tenant-scoped degradation, never service-wide panic;
- the watchdog's stall verdict on running jobs doubles as the admission
  controller's load-shedding input (429 + Retry-After while stalled).

Graceful shutdown (``request_drain``): new submissions get 503, queued
jobs are cancelled, running jobs get up to ``drain_timeout`` seconds to
finish (then cooperative cancellation), history is flushed, the pool and
HTTP server stop.  SIGTERM/SIGINT wiring lives in the CLI.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.engine import ExecutionEngine
from repro.exec.faults import RobustnessPolicy
from repro.obs.history import append_record, make_record
from repro.obs.live import LiveConfig
from repro.obs.serve import escape_help, escape_label_value
from repro.service.jobs import (
    Job,
    JobState,
    TERMINAL_STATES,
    resolve_iterations,
    compile_chaos,
)
from repro.service.pool import LeaseRuntime, WorkerPool
from repro.service.queue import Admission, AdmissionConfig, AdmissionController
from repro.service.scheduler import FairScheduler
from repro.service.tenants import TenantDirectory, TenantState

logger = logging.getLogger(__name__)

#: How often the dispatcher re-checks for runnable work when idle.
_DISPATCH_POLL = 0.05


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0
    pool_workers: int = 2
    slots: int = 2
    #: Workers leased per job.  None = an even split of the pool across
    #: the job slots (so concurrent jobs actually run concurrently); the
    #: pool clamps to what is idle either way.
    workers_per_job: Optional[int] = None
    capacity: int = 16
    batch_size: int = 8
    max_queued: int = 16
    tenant_queued_quota: int = 8
    tenant_running_quota: int = 1
    default_weight: int = 1
    weights: Dict[str, int] = field(default_factory=dict)
    drain_timeout: float = 10.0
    history_path: Optional[str] = None
    live_interval: float = 0.05
    policy: Optional[RobustnessPolicy] = None
    start_method: Optional[str] = None


class PipelineService:
    """The multi-tenant pipeline-as-a-service core (HTTP face in
    :mod:`repro.service.api`)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.policy = cfg.policy or RobustnessPolicy()
        self.pool = WorkerPool(
            workers=cfg.pool_workers,
            slots=cfg.slots,
            capacity=cfg.capacity,
            batch_size=cfg.batch_size,
            policy=self.policy,
            start_method=cfg.start_method,
        )
        self.scheduler = FairScheduler()
        self.admission = AdmissionController(
            AdmissionConfig(
                max_queued=cfg.max_queued,
                tenant_queued_quota=cfg.tenant_queued_quota,
                tenant_running_quota=cfg.tenant_running_quota,
            )
        )
        self.tenants = TenantDirectory(
            pool_workers=cfg.pool_workers,
            capacity=cfg.capacity,
            batch_size=cfg.batch_size,
            default_weight=cfg.default_weight,
            weights=cfg.weights,
        )
        self.workers_per_job = cfg.workers_per_job or max(
            1, cfg.pool_workers // max(1, cfg.slots)
        )
        self.jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._job_seq = 0
        self._draining = False
        self._stopping = False
        self._drained = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._runners: List[threading.Thread] = []
        self._api_server = None
        self.started_unix: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self, serve_http: bool = True) -> "PipelineService":
        self.pool.start()
        self.started_unix = time.time()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatch", daemon=True
        )
        self._dispatcher.start()
        if serve_http:
            from repro.service.api import ApiServer

            self._api_server = ApiServer(
                self, host=self.config.host, port=self.config.port
            ).start()
        return self

    @property
    def port(self) -> Optional[int]:
        return self._api_server.port if self._api_server else None

    def request_drain(self) -> None:
        """Flip into draining: refuse new work, cancel the queue, let
        running jobs finish.  Idempotent, signal-handler safe."""
        with self._wake:
            if self._draining:
                return
            self._draining = True
            for job in self.scheduler.queued_jobs():
                self._finish_cancelled_queued(job, reason="server draining")
            self._wake.notify_all()
        logger.info("drain requested: rejecting new submissions")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every running job has finished (True) or the drain
        timeout passed (False) — in which case stragglers are cancelled
        cooperatively and given a short grace period."""
        self.request_drain()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        clean = self._await_idle(deadline)
        if not clean:
            # Not clean — jobs had to be cancelled.  Still wait out the
            # cancellations so teardown never races running leases.
            with self._wake:
                for job in self._running_jobs():
                    logger.warning(
                        "drain timeout: cancelling running job %s", job.id
                    )
                    job.cancel_requested = True
                    if job.lease is not None:
                        job.lease.cancel()
            self._await_idle(time.monotonic() + 5.0)
        return clean

    def _await_idle(self, deadline: float) -> bool:
        with self._wake:
            while self._running_jobs():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(min(remaining, 0.1))
            return True

    def stop(self) -> None:
        """Stop everything (after a drain for graceful paths).  Idempotent."""
        with self._wake:
            if self._stopping:
                return
            self._stopping = True
            self._wake.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        for runner in list(self._runners):
            runner.join(timeout=5.0)
        if self._api_server is not None:
            self._api_server.stop()
            self._api_server = None
        self.pool.shutdown()
        self._drained.set()

    def drain_and_stop(self, timeout: Optional[float] = None) -> bool:
        clean = self.drain(timeout)
        self.stop()
        return clean

    # -- submissions ----------------------------------------------------------------

    def submit(
        self, tenant_name: str, workload: str, params: Optional[dict] = None
    ) -> Tuple[Optional[Job], Admission]:
        """Admit one job (or refuse it).  Raises ``ValueError`` on a
        malformed request — the API layer maps that to 400."""
        params = params or {}
        if not tenant_name or not isinstance(tenant_name, str):
            raise ValueError("tenant must be a non-empty string")
        iterations = resolve_iterations(workload, params)
        fault_plan = compile_chaos(params.get("chaos"), iterations)
        with self._wake:
            tenant = self.tenants.get_or_create(tenant_name)
            decision = self.admission.admit(
                depth=self.scheduler.depth(),
                tenant_queued=self.scheduler.depth(tenant_name),
                tenant_running=tenant.running,
                draining=self._draining or self._stopping,
                shedding=self._shedding(),
            )
            if not decision.accepted:
                tenant.rejected += 1
                return None, decision
            self._job_seq += 1
            job = Job(
                job_id=f"j{self._job_seq:05d}",
                tenant=tenant_name,
                workload=workload,
                params=params,
                iterations=iterations,
                fault_plan=fault_plan,
            )
            self.jobs[job.id] = job
            tenant.submitted += 1
            self.scheduler.enqueue(job)
            self._wake.notify_all()
            return job, decision

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job: queued jobs die immediately, running jobs get the
        cooperative flag (the committer observes it at its next poll).
        Returns the resulting state string, or None for an unknown id."""
        with self._wake:
            job = self.jobs.get(job_id)
            if job is None:
                return None
            if job.state is JobState.QUEUED:
                self._finish_cancelled_queued(job, reason="cancelled by client")
                self._wake.notify_all()
                return job.state.value
            if job.state is JobState.RUNNING:
                job.cancel_requested = True
                if job.lease is not None:
                    job.lease.cancel()
                return "cancelling"
            return job.state.value

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            return [
                job for job in self.jobs.values()
                if tenant is None or job.tenant == tenant
            ]

    # -- dispatch ----------------------------------------------------------------

    def _eligible(self, tenant_name: str) -> bool:
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            return False
        return tenant.running < self.config.tenant_running_quota

    def _weight_of(self, tenant_name: str) -> int:
        tenant = self.tenants.get(tenant_name)
        return tenant.weight if tenant is not None else 1

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                if self._stopping:
                    return
                job = None
                if self.pool.can_lease():
                    job = self.scheduler.take(self._eligible, self._weight_of)
                if job is None:
                    self._wake.wait(_DISPATCH_POLL)
                    continue
            lease = self.pool.try_lease(self.workers_per_job)
            with self._wake:
                if lease is None:
                    # Lost the race for the last slot; retry shortly.
                    self.scheduler.push_front(job)
                    self._wake.wait(_DISPATCH_POLL)
                    continue
                if job.cancel_requested or job.state is not JobState.QUEUED:
                    self.pool.release(lease)
                    continue
                tenant = self.tenants.get_or_create(job.tenant)
                job.state = JobState.RUNNING
                job.started_unix = time.time()
                job.lease = lease
                tenant.running += 1
                tenant.record_queue_wait(job.queue_wait_s or 0.0)
                runner = threading.Thread(
                    target=self._run_job, args=(job, lease),
                    name=f"service-{job.id}", daemon=True,
                )
                self._runners.append(runner)
                self._runners = [t for t in self._runners if t.is_alive()]
            runner.start()

    def _run_job(self, job: Job, lease: LeaseRuntime) -> None:
        tenant = self.tenants.get_or_create(job.tenant)
        lease.job_throttle = tenant.throttle
        error: Optional[str] = None
        result = None
        try:
            engine = ExecutionEngine(
                workers=max(1, len(lease.worker_ids)),
                capacity=self.config.capacity,
                batch_size=self.config.batch_size,
                policy=self.policy,
                fault_plan=job.fault_plan,
                live=LiveConfig(interval=self.config.live_interval),
                runtime=lease,
            )
            job.engine = engine
            result = engine.run(job.build_spec())
        except BaseException as exc:  # a job must never kill the server
            logger.exception("job %s failed", job.id)
            error = repr(exc)
        finally:
            self.pool.release(lease)
        with self._wake:
            job.finished_unix = time.time()
            job.lease = None
            job.engine = None
            tenant.running -= 1
            if error is not None:
                job.state = JobState.FAILED
                job.error = error
                tenant.failed += 1
            else:
                metrics = result.metrics
                job.metrics = metrics.to_json()
                if metrics.cancelled or job.cancel_requested:
                    job.state = JobState.CANCELLED
                    tenant.cancelled += 1
                else:
                    job.state = JobState.DONE
                    job.output = result.output
                    tenant.completed += 1
                tenant.committed += metrics.commits
                tenant.conflicts += metrics.conflicts
                tenant.serial_reexec += metrics.serial_reexecutions
                watchdog = metrics.watchdog or {}
                # A storm is either what the live watchdog flagged or a
                # job whose end-to-end misspeculation rate crossed the
                # storm threshold (short jobs can finish between watchdog
                # samples — the rate check is sampling-independent).
                misspec = metrics.conflicts + metrics.serial_reexecutions
                storm_rate = (
                    metrics.commits > 0
                    and misspec >= max(4, metrics.commits // 3)
                )
                stormed = watchdog.get("storms", 0) > 0 or storm_rate
                if stormed:
                    tenant.storms += 1
                # Tenant-scoped degradation: sticky while storms continue
                # or the throttle is pinned serial; cleared by a clean job.
                tenant.degraded = stormed or tenant.throttle.at_floor
            self._wake.notify_all()
        if error is None and self.config.history_path:
            self._append_history(job, result)

    def _finish_cancelled_queued(self, job: Job, reason: str) -> None:
        """Terminal bookkeeping for a job cancelled before dispatch.
        Caller holds the lock; the scheduler drops it lazily."""
        job.state = JobState.CANCELLED
        job.finished_unix = time.time()
        job.error = reason
        tenant = self.tenants.get_or_create(job.tenant)
        tenant.cancelled += 1

    def _running_jobs(self) -> List[Job]:
        return [
            job for job in self.jobs.values()
            if job.state is JobState.RUNNING
        ]

    def _shedding(self) -> bool:
        """Load-shedding input: is any running job's watchdog stalled?"""
        for job in self._running_jobs():
            engine = job.engine
            monitor = engine.live_monitor if engine is not None else None
            if monitor is not None and monitor.watchdog.stalled:
                return True
        return False

    def _append_history(self, job: Job, result) -> None:
        try:
            record = make_record(
                name=f"service:{job.workload}",
                metrics=result.metrics,
                label=job.id,
                ok=job.state is JobState.DONE,
                watchdog=result.metrics.watchdog,
                extra={"tenant": job.tenant, "job_state": job.state.value},
            )
            append_record(self.config.history_path, record)
        except Exception:
            logger.exception("history append failed for job %s", job.id)

    # -- telemetry ----------------------------------------------------------------

    def health_json(self) -> Tuple[int, dict]:
        """``(http_status, body)`` for ``/health``: per-tenant verdicts,
        degradation scoped to the tenant that earned it."""
        with self._lock:
            live_degraded = self._live_degraded_tenants()
            tenants = {}
            any_degraded = False
            for name, tenant in sorted(self.tenants.all().items()):
                degraded = tenant.degraded or name in live_degraded
                any_degraded = any_degraded or degraded
                tenants[name] = {
                    "status": "degraded" if degraded else "ok",
                    "running": tenant.running,
                    "queued": self.scheduler.depth(name),
                    "window": tenant.throttle.window,
                    "storms": tenant.storms,
                }
            pool = self.pool.stats()
            if self._draining or self._stopping:
                status = "draining"
            elif pool["alive"] == 0 or pool["slots_quarantined"] >= pool["slots"]:
                status = "failed"  # service-wide: nothing can run
            elif self._shedding():
                status = "shedding"
            else:
                # Tenant degradation is tenant-scoped by design: the
                # service stays "ok" so healthy tenants keep submitting.
                status = "ok"
            body = {
                "status": status,
                "draining": self._draining,
                "queue_depth": self.scheduler.depth(),
                "running": len(self._running_jobs()),
                "tenants": tenants,
                "pool": pool,
            }
            http = 200 if status in ("ok", "shedding") else 503
            return http, body

    def _live_degraded_tenants(self) -> set:
        flagged = set()
        for job in self._running_jobs():
            engine = job.engine
            monitor = engine.live_monitor if engine is not None else None
            if monitor is None:
                continue
            watchdog = monitor.watchdog
            if watchdog.storming or watchdog.stalled:
                flagged.add(job.tenant)
        return flagged

    def snapshot_json(self) -> dict:
        with self._lock:
            return {
                "jobs": [
                    job.to_json() for job in self.jobs.values()
                ],
                "tenants": {
                    name: tenant.to_json()
                    for name, tenant in sorted(self.tenants.all().items())
                },
                "pool": self.pool.stats(),
                "queue_depth": self.scheduler.depth(),
                "draining": self._draining,
            }

    def metrics_text(self) -> str:
        """Service-level Prometheus exposition (per-tenant labels), in the
        same 0.0.4 text format as :func:`repro.obs.serve.prometheus_exposition`."""
        with self._lock:
            lines: List[str] = []

            def header(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
                lines.append(f"# TYPE {name} {kind}")

            def tenant_label(name: str, extra: str = "") -> str:
                label = f'tenant="{escape_label_value(name)}"'
                return "{" + label + (("," + extra) if extra else "") + "}"

            tenants = sorted(self.tenants.all().items())
            header(
                "repro_service_jobs_total", "counter",
                "Job lifecycle events per tenant.",
            )
            for name, tenant in tenants:
                for event, value in (
                    ("submitted", tenant.submitted),
                    ("rejected", tenant.rejected),
                    ("completed", tenant.completed),
                    ("failed", tenant.failed),
                    ("cancelled", tenant.cancelled),
                ):
                    lines.append(
                        "repro_service_jobs_total"
                        + tenant_label(name, f'event="{event}"')
                        + f" {value}"
                    )
            for metric, help_text, getter in (
                ("repro_service_committed_total",
                 "Iterations committed across a tenant's finished jobs.",
                 lambda t: t.committed),
                ("repro_service_conflicts_total",
                 "Misspeculations across a tenant's finished jobs.",
                 lambda t: t.conflicts),
                ("repro_service_serial_reexec_total",
                 "Serial re-executions across a tenant's finished jobs.",
                 lambda t: t.serial_reexec),
                ("repro_service_storms_total",
                 "Finished jobs whose watchdog flagged a storm.",
                 lambda t: t.storms),
            ):
                header(metric, "counter", help_text)
                for name, tenant in tenants:
                    lines.append(
                        metric + tenant_label(name) + f" {getter(tenant)}"
                    )
            header(
                "repro_service_queue_wait_seconds", "summary",
                "Admission-to-dispatch wait per tenant.",
            )
            for name, tenant in tenants:
                lines.append(
                    "repro_service_queue_wait_seconds_sum"
                    + tenant_label(name)
                    + f" {tenant.queue_wait_total:.9g}"
                )
                lines.append(
                    "repro_service_queue_wait_seconds_count"
                    + tenant_label(name)
                    + f" {tenant.queue_wait_count}"
                )
            for metric, help_text, getter in (
                ("repro_service_tenant_running",
                 "Running jobs per tenant.", lambda t: t.running),
                ("repro_service_tenant_queued",
                 "Queued jobs per tenant.",
                 lambda t: self.scheduler.depth(t.name)),
                ("repro_service_tenant_window",
                 "Current speculative window of the tenant's throttle.",
                 lambda t: t.throttle.window),
                ("repro_service_tenant_degraded",
                 "1 while the tenant is degraded (storming or serialized).",
                 lambda t: 1 if t.degraded else 0),
            ):
                header(metric, "gauge", help_text)
                for name, tenant in tenants:
                    lines.append(
                        metric + tenant_label(name) + f" {getter(tenant)}"
                    )
            pool = self.pool.stats()
            for metric, help_text, value in (
                ("repro_service_queue_depth",
                 "Live queued jobs.", self.scheduler.depth()),
                ("repro_service_running_jobs",
                 "Jobs currently running.", len(self._running_jobs())),
                ("repro_service_draining",
                 "1 while the server is draining.",
                 1 if self._draining else 0),
                ("repro_service_pool_workers_idle",
                 "Idle pool workers.", pool["idle"]),
                ("repro_service_pool_workers_leased",
                 "Leased pool workers.", pool["leased"]),
                ("repro_service_pool_slots_free",
                 "Free job slots.", pool["slots_free"]),
            ):
                header(metric, "gauge", help_text)
                lines.append(f"{metric} {value}")
            header(
                "repro_service_pool_spawned_total", "counter",
                "Pool worker processes spawned since start (respawns included).",
            )
            lines.append(
                f"repro_service_pool_spawned_total {pool['spawned_total']}"
            )
            return "\n".join(lines) + "\n"
