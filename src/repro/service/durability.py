"""The durable job plane: write-ahead journal, artifact store, recovery.

The paper's discipline — speculative work is only *real* once the in-order
committer retires it — previously stopped at the engine boundary: the job
server kept every queued job, running lease, and finished result in memory,
so a server crash silently discarded all tenant work even though the engine
could already resume a committed prefix.  This module extends the
commit-is-truth rule to the service layer:

- :class:`JobJournal` — an append-only JSONL write-ahead log of every job
  state transition (``submitted -> queued -> leased -> running ->
  completed | failed | cancelled | retry_scheduled | dead_letter``), one
  record per line, each carrying a strictly increasing ``seq`` number.
  The recovery discipline is the one proven by :mod:`repro.obs.spool`:
  embedded sequence numbers, a torn tail (a record cut mid-write by a
  crash) detected and *truncated in place* before the journal is appended
  to again, corrupt interior lines skipped loudly and counted, gaps
  audited.  An acknowledged submission is ``fsync``\\ ed before the HTTP
  202 leaves the server, so a SIGKILL one instruction later loses nothing.

- :class:`ArtifactStore` — per-job on-disk artifacts
  (``artifacts/<job>/output.pkl``, ``metrics.json``, ``checkpoint.pkl``)
  written atomically (temp file + rename, the
  :meth:`repro.resilience.checkpoint.Checkpoint.save` idiom).  Job outputs
  spill here the moment they are produced, and the server drops its
  in-memory copy — results survive restarts and the resident set no longer
  grows with job history.  The engine's periodic committed-prefix
  checkpoint for a running job lands here too, which is what lets a
  restarted server resume an interrupted job instead of re-running it.

- :func:`fold_records` — replay: fold the journal into one
  :class:`ReplayedJob` per job (last state wins, payload from the
  ``submitted`` record, attempt counters preserved), in original
  submission order, so the restarting server re-admits queued jobs in the
  order clients submitted them.

The WAL ordering rule: durable side effects land *before* the journal
record that acknowledges them.  A ``completed`` record is only appended
after the output artifact is on disk, so replay never points at a result
that does not exist.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

JOURNAL_NAME = "journal.jsonl"
ARTIFACT_DIR = "artifacts"

#: Journal events that mark a job as waiting for dispatch.
QUEUED_EVENTS = frozenset({"submitted", "queued", "retry_scheduled"})
#: Journal events that mark a job as having been handed to a lease —
#: a crash while one of these is the last word means the job was
#: interrupted mid-run and must be restarted (from its checkpoint if one
#: was persisted).
RUNNING_EVENTS = frozenset({"leased", "running"})
#: Journal events after which a job never moves again.
TERMINAL_EVENTS = frozenset(
    {"completed", "failed", "cancelled", "dead_letter"}
)
#: Everything the journal will accept; anything else is a programming
#: error, caught at append time rather than at the next recovery.
KNOWN_EVENTS = QUEUED_EVENTS | RUNNING_EVENTS | TERMINAL_EVENTS


class JournalError(RuntimeError):
    """The journal cannot be opened, appended to, or replayed."""


@dataclass
class JournalStats:
    """What one replay found — exposed on ``/metrics`` and ``/health``."""

    records: int = 0
    torn_tail: int = 0  # 0 or 1: a partial last record was truncated away
    corrupt_records: int = 0  # interior lines that failed to parse
    seq_gaps: int = 0  # missing sequence numbers (corrupt or lost records)
    next_seq: int = 0
    compacted: bool = False

    def to_json(self) -> dict:
        return {
            "records": self.records,
            "torn_tail": self.torn_tail,
            "corrupt_records": self.corrupt_records,
            "seq_gaps": self.seq_gaps,
            "next_seq": self.next_seq,
            "compacted": self.compacted,
        }


class JobJournal:
    """Append-only JSONL write-ahead log of job state transitions.

    ``open()`` replays the existing file (truncating any torn tail so
    later appends cannot fuse with a partial record) and positions the
    writer after the last durable byte.  ``append`` is called under the
    service lock — one writer, strictly increasing ``seq``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self._next_seq = 0
        self.appended = 0
        self.fsyncs = 0
        self.stats = JournalStats()

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def open(cls, path: str) -> Tuple["JobJournal", List[dict]]:
        """Open (creating if absent) and replay; returns the journal ready
        for appends plus every surviving record in file order."""
        journal = cls(path)
        records = journal._replay_and_repair()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        journal._handle = open(path, "ab")
        return journal, records

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    # -- writing ------------------------------------------------------------------

    def append(
        self,
        event: str,
        job_id: str,
        data: Optional[dict] = None,
        fsync: bool = False,
    ) -> int:
        """One state transition, flushed to the OS before returning.

        ``fsync=True`` forces the record to stable storage — used for
        submissions (the 202 acknowledgment must survive anything) and
        terminal transitions (a completed job must never re-run).
        """
        if self._handle is None:
            raise JournalError("journal is closed")
        if event not in KNOWN_EVENTS:
            raise JournalError(f"unknown journal event {event!r}")
        record = {"seq": self._next_seq, "ts": round(time.time(), 3),
                  "event": event, "job": job_id}
        if data:
            record["data"] = data
        line = json.dumps(record, separators=(",", ":"), default=str)
        self._handle.write(line.encode() + b"\n")
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
        self._next_seq += 1
        self.appended += 1
        return record["seq"]

    # -- replay -------------------------------------------------------------------

    def _replay_and_repair(self) -> List[dict]:
        """Parse every durable record; truncate a torn tail in place.

        A record is durable iff its line is newline-terminated and parses
        as a JSON object with a ``seq``.  The file is truncated back to
        the end of the last durable record so the next append starts on a
        clean line — without this, a crash-torn fragment and the next
        append would fuse into one unparseable line and a *second* crash
        would lose both.
        """
        stats = self.stats
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as handle:
            raw = handle.read()
        records: List[dict] = []
        durable_end = 0  # byte offset just past the last good record
        expected_seq: Optional[int] = None
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                stats.torn_tail = 1
                logger.warning(
                    "journal %s: torn tail (%d bytes) truncated",
                    self.path, len(raw) - offset,
                )
                break
            line = raw[offset:newline]
            offset = newline + 1
            record = self._parse(line)
            if record is None:
                stats.corrupt_records += 1
                logger.warning(
                    "journal %s: skipping corrupt record at byte %d",
                    self.path, offset - len(line) - 1,
                )
                # The line was newline-terminated, so appends after it are
                # intact; keep scanning rather than discarding the suffix.
                durable_end = offset
                continue
            seq = record["seq"]
            if expected_seq is not None and seq != expected_seq:
                stats.seq_gaps += 1
                logger.warning(
                    "journal %s: seq gap (expected %d, found %d)",
                    self.path, expected_seq, seq,
                )
            expected_seq = seq + 1
            records.append(record)
            durable_end = offset
        if durable_end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(durable_end)
        stats.records = len(records)
        stats.next_seq = (records[-1]["seq"] + 1) if records else 0
        self._next_seq = stats.next_seq
        return records

    @staticmethod
    def _parse(line: bytes) -> Optional[dict]:
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        if not isinstance(record.get("seq"), int):
            return None
        if record.get("event") not in KNOWN_EVENTS:
            return None
        if not isinstance(record.get("job"), str):
            return None
        return record

    # -- compaction ---------------------------------------------------------------

    def compact(self, snapshot_records: List[Tuple[str, str, dict]]) -> None:
        """Rewrite the journal as one compact snapshot (atomic rename).

        ``snapshot_records`` is ``[(event, job_id, data), ...]`` — the
        caller (the service, after recovery) serializes its live state:
        one ``submitted`` record per job followed by that job's latest
        state, so a replay of the compacted journal reconstructs exactly
        the state the compactor saw.  Sequence numbers restart at 0.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        handle, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        was_open = self._handle is not None
        try:
            with os.fdopen(handle, "wb") as stream:
                for seq, (event, job_id, data) in enumerate(snapshot_records):
                    record = {"seq": seq, "ts": round(time.time(), 3),
                              "event": event, "job": job_id}
                    if data:
                        record["data"] = data
                    stream.write(
                        json.dumps(
                            record, separators=(",", ":"), default=str
                        ).encode() + b"\n"
                    )
                stream.flush()
                os.fsync(stream.fileno())
            if was_open:
                self._handle.close()
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        finally:
            if was_open:
                self._handle = open(self.path, "ab")
        self._next_seq = len(snapshot_records)
        self.stats.compacted = True


# -- artifact store -------------------------------------------------------------


class ArtifactStore:
    """Per-job on-disk artifacts under ``<state_dir>/artifacts/<job>/``.

    Outputs are pickled (full Python-object fidelity — the result endpoint
    serves exactly what the engine produced), metrics are JSON (small,
    greppable, loaded alone during recovery), and the engine's periodic
    committed-prefix checkpoint shares the directory.  All writes are
    atomic; a crash mid-write leaves the previous version or nothing.
    """

    OUTPUT = "output.pkl"
    METRICS = "metrics.json"
    CHECKPOINT = "checkpoint.pkl"
    TRACE = "trace.json"
    TIMELINE = "timeline.json"
    BOTTLENECK = "bottleneck.json"
    #: Per-job spool directory (the engine's and the service's ring spools
    #: for one traced job live here until they are merged and exported).
    TRACE_SPOOL_DIR = "trace"
    #: Post-mortem bundles, grouped per tenant.  Dot-prefixed so the name
    #: can never collide with a job directory (job ids reject dots).
    POSTMORTEM_DIR = ".postmortem"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _job_dir(self, job_id: str, create: bool = False) -> str:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"bad job id {job_id!r}")
        path = os.path.join(self.root, job_id)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def _atomic_write(path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        handle, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".artifact-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # -- outputs ------------------------------------------------------------------

    def put_result(self, job_id: str, output: Any, metrics: dict) -> None:
        """Persist a finished job's output and metrics (output first, so a
        crash between the two leaves a loadable output either way)."""
        directory = self._job_dir(job_id, create=True)
        self._atomic_write(
            os.path.join(directory, self.OUTPUT),
            pickle.dumps(output, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._atomic_write(
            os.path.join(directory, self.METRICS),
            json.dumps(metrics, default=str).encode(),
        )

    def has_result(self, job_id: str) -> bool:
        return os.path.exists(
            os.path.join(self._job_dir(job_id), self.OUTPUT)
        )

    def load_output(self, job_id: str) -> Any:
        with open(os.path.join(self._job_dir(job_id), self.OUTPUT), "rb") as f:
            return pickle.load(f)

    def load_metrics(self, job_id: str) -> Optional[dict]:
        path = os.path.join(self._job_dir(job_id), self.METRICS)
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- trace artifacts ----------------------------------------------------------

    def trace_spool_dir(self, job_id: str) -> str:
        """The per-job spool directory every traced stage writes into."""
        path = os.path.join(
            self._job_dir(job_id, create=True), self.TRACE_SPOOL_DIR
        )
        os.makedirs(path, exist_ok=True)
        return path

    def put_trace(self, job_id: str, trace: dict, timeline: dict) -> None:
        """Persist a job's merged Chrome trace and compact timeline."""
        directory = self._job_dir(job_id, create=True)
        self._atomic_write(
            os.path.join(directory, self.TRACE),
            json.dumps(trace, default=str).encode(),
        )
        self._atomic_write(
            os.path.join(directory, self.TIMELINE),
            json.dumps(timeline, default=str).encode(),
        )

    def load_trace(self, job_id: str) -> Optional[dict]:
        return self._load_json(os.path.join(self._job_dir(job_id), self.TRACE))

    def load_timeline(self, job_id: str) -> Optional[dict]:
        return self._load_json(
            os.path.join(self._job_dir(job_id), self.TIMELINE)
        )

    def put_bottleneck(self, job_id: str, analysis: dict) -> None:
        """Persist a traced job's critical-path bottleneck analysis."""
        self._atomic_write(
            os.path.join(self._job_dir(job_id, create=True), self.BOTTLENECK),
            json.dumps(analysis, default=str).encode(),
        )

    def load_bottleneck(self, job_id: str) -> Optional[dict]:
        return self._load_json(
            os.path.join(self._job_dir(job_id), self.BOTTLENECK)
        )

    @staticmethod
    def _load_json(path: str) -> Optional[dict]:
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- post-mortem bundles -------------------------------------------------------

    @staticmethod
    def _safe_tenant(tenant: str) -> str:
        """A filesystem-safe tenant directory name.  Dots are dropped too,
        so a hostile tenant string can never traverse out of the store."""
        safe = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in tenant
        )
        return safe or "_"

    def _postmortem_dir(self, tenant: str, create: bool = False) -> str:
        path = os.path.join(
            self.root, self.POSTMORTEM_DIR, self._safe_tenant(tenant)
        )
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def put_postmortem(
        self, tenant: str, name: str, payload: dict, keep: int = 8
    ) -> str:
        """Write one post-mortem bundle; enforce the per-tenant LRU cap.

        ``keep`` bounds how many bundles a tenant retains (oldest by mtime
        evicted first) so a crash-looping tenant cannot fill the store.
        """
        directory = self._postmortem_dir(tenant, create=True)
        safe_name = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in name
        ) or "bundle"
        path = os.path.join(directory, f"{safe_name}.json")
        self._atomic_write(
            path, json.dumps(payload, default=str, indent=1).encode()
        )
        self._prune_postmortems(directory, max(1, keep))
        return path

    @staticmethod
    def _prune_postmortems(directory: str, keep: int) -> int:
        """Evict oldest-by-mtime bundles beyond ``keep``; returns evictions."""
        try:
            with os.scandir(directory) as entries:
                bundles = [
                    (entry.stat().st_mtime, entry.path)
                    for entry in entries
                    if entry.is_file() and entry.name.endswith(".json")
                ]
        except OSError:
            return 0
        bundles.sort(reverse=True)
        evicted = 0
        for _, path in bundles[keep:]:
            try:
                os.unlink(path)
                evicted += 1
            except OSError:
                pass
        return evicted

    def list_postmortems(self, tenant: str) -> List[str]:
        """Bundle paths for one tenant, newest first."""
        directory = self._postmortem_dir(tenant)
        try:
            with os.scandir(directory) as entries:
                bundles = [
                    (entry.stat().st_mtime, entry.path)
                    for entry in entries
                    if entry.is_file() and entry.name.endswith(".json")
                ]
        except OSError:
            return []
        bundles.sort(reverse=True)
        return [path for _, path in bundles]

    def load_postmortem(self, path: str) -> Optional[dict]:
        real = os.path.realpath(path)
        store = os.path.realpath(os.path.join(self.root, self.POSTMORTEM_DIR))
        if not real.startswith(store + os.sep):
            return None
        return self._load_json(real)

    # -- checkpoints --------------------------------------------------------------

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(
            self._job_dir(job_id, create=True), self.CHECKPOINT
        )

    def has_checkpoint(self, job_id: str) -> bool:
        return os.path.exists(
            os.path.join(self._job_dir(job_id), self.CHECKPOINT)
        )

    def discard_checkpoint(self, job_id: str) -> None:
        """Drop a terminal job's checkpoint — only interrupted or retrying
        jobs need one, and a stale checkpoint must never leak into a
        *different* job's resume."""
        try:
            os.unlink(os.path.join(self._job_dir(job_id), self.CHECKPOINT))
        except OSError:
            pass

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict:
        jobs = 0
        total_bytes = 0
        try:
            entries = os.scandir(self.root)
        except OSError:
            return {"jobs": 0, "bytes": 0}
        with entries:
            for entry in entries:
                if not entry.is_dir() or entry.name.startswith("."):
                    continue
                jobs += 1
                try:
                    with os.scandir(entry.path) as files:
                        for item in files:
                            try:
                                total_bytes += item.stat().st_size
                            except OSError:
                                pass
                except OSError:
                    pass
        return {"jobs": jobs, "bytes": total_bytes}


# -- replay folding --------------------------------------------------------------


@dataclass
class ReplayedJob:
    """One job folded out of the journal: its submission payload plus the
    last word the journal has on it."""

    job_id: str
    payload: dict = field(default_factory=dict)
    last_event: str = "submitted"
    attempts: int = 0
    error: Optional[str] = None
    submitted_seq: int = 0
    #: ``resumed_from`` of the last completed attempt (informational).
    resumed_from: Optional[int] = None

    @property
    def interrupted(self) -> bool:
        """Was the job mid-run when the journal stopped?"""
        return self.last_event in RUNNING_EVENTS

    @property
    def queued(self) -> bool:
        return self.last_event in QUEUED_EVENTS

    @property
    def terminal(self) -> bool:
        return self.last_event in TERMINAL_EVENTS


def fold_records(records: List[dict]) -> List[ReplayedJob]:
    """Fold journal records into per-job replay state, in submission order.

    Records for a job that has no ``submitted`` record (its submission was
    lost to corruption) are dropped — without the payload the job cannot
    be rebuilt, and half a job is worse than an honest loss count.
    """
    jobs: Dict[str, ReplayedJob] = {}
    orphaned = 0
    for record in records:
        job_id = record["job"]
        event = record["event"]
        data = record.get("data") or {}
        replayed = jobs.get(job_id)
        if replayed is None:
            if event != "submitted":
                orphaned += 1
                continue
            replayed = ReplayedJob(
                job_id=job_id,
                payload=dict(data),
                submitted_seq=record["seq"],
            )
            jobs[job_id] = replayed
            continue
        replayed.last_event = event
        if "attempt" in data:
            replayed.attempts = max(replayed.attempts, int(data["attempt"]))
        if "error" in data:
            replayed.error = data["error"]
        if "resumed_from" in data:
            replayed.resumed_from = data["resumed_from"]
    if orphaned:
        logger.warning(
            "journal replay: dropped %d record(s) for jobs whose submission "
            "record was lost", orphaned,
        )
    return sorted(jobs.values(), key=lambda j: j.submitted_seq)


@dataclass
class RecoveryReport:
    """What one restart recovered — exposed on ``/metrics`` and ``/health``
    so operators can see that a restart lost nothing."""

    requeued: int = 0  # jobs that were queued (or retry-waiting) at crash
    resumed: int = 0  # interrupted jobs restarted from a checkpoint
    restarted: int = 0  # interrupted jobs restarted from iteration 0
    terminal: int = 0  # finished jobs whose records were reloaded
    errors: int = 0  # journal jobs that could not be rebuilt
    journal: JournalStats = field(default_factory=JournalStats)

    @property
    def recovered(self) -> int:
        return self.requeued + self.resumed + self.restarted

    def to_json(self) -> dict:
        return {
            "requeued": self.requeued,
            "resumed": self.resumed,
            "restarted": self.restarted,
            "terminal": self.terminal,
            "errors": self.errors,
            "journal": self.journal.to_json(),
        }
