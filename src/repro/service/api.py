"""The HTTP face of the job server.

Same stdlib :class:`~http.server.ThreadingHTTPServer` pattern as
:mod:`repro.obs.serve` — no framework, a handler class bound to its
service via ``type()``, ephemeral-port friendly (``port=0``).  JSON in,
JSON out.

Routes::

    POST   /jobs                 submit  {"tenant", "workload", "params"}
    GET    /jobs?tenant=NAME     list (optionally per tenant)
    GET    /jobs/<id>            status (full record: params + metrics)
    GET    /jobs/<id>/result     output of a finished job (409 until done)
    GET    /jobs/<id>/trace      merged Chrome trace JSON (409 until done)
    GET    /jobs/<id>/timeline   compact per-stage timeline (409 until done)
    GET    /jobs/<id>/bottleneck critical-path bottleneck analysis (409 until done)
    GET    /jobs/<id>/postmortem post-mortem bundle, if one was snapshotted
    POST   /jobs/<id>/cancel     cancel queued or running
    DELETE /jobs/<id>            alias for cancel
    GET    /health               service + per-tenant verdicts
    GET    /metrics              Prometheus text (service level)
    GET    /snapshot             full JSON state dump

Admission refusals carry the controller's verdict: 429 responses include
a ``Retry-After`` header (derived from the observed dispatch rate and
backlog when the server has seen recent dispatches), 503 means the server
is draining.  The tenant may come from the body or the ``X-Tenant``
header (body wins); an idempotency key (body ``idempotency_key`` or the
``Idempotency-Key`` header) makes the submission exactly-once per tenant —
a resubmit with the same key returns the existing job with 200 instead of
creating a duplicate, including across durable-server restarts.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.serve import PROMETHEUS_CONTENT_TYPE
from repro.service.jobs import JobState, TERMINAL_STATES

logger = logging.getLogger(__name__)

#: Submission bodies larger than this are refused outright.
_MAX_BODY = 64 * 1024


class _ApiHandler(BaseHTTPRequestHandler):
    """Bound to a :class:`~repro.service.server.PipelineService` via a
    ``type()`` subclass (see :class:`ApiServer.start`)."""

    service = None  # injected
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib naming
        logger.debug("api: " + fmt, *args)

    # -- plumbing -----------------------------------------------------------------

    def _send(self, status: int, content_type: str, body: bytes,
              extra_headers=()) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload, extra_headers=()) -> None:
        body = json.dumps(payload, indent=2, default=str).encode()
        self._send(status, "application/json", body, extra_headers)

    def _error(self, status: int, message: str, extra_headers=()) -> None:
        self._json(status, {"error": message}, extra_headers)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._error(413, f"body too large (max {_MAX_BODY} bytes)")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError:
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    # -- verbs --------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                status, body = self.service.health_json()
                self._json(status, body)
            elif parts == ["metrics"]:
                self._send(
                    200, PROMETHEUS_CONTENT_TYPE,
                    self.service.metrics_text().encode(),
                )
            elif parts == ["snapshot"]:
                self._json(200, self.service.snapshot_json())
            elif parts == ["jobs"]:
                query = parse_qs(url.query)
                tenant = (query.get("tenant") or [None])[0]
                jobs = self.service.list_jobs(tenant)
                self._json(200, {"jobs": [job.to_json() for job in jobs]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._job_status(parts[1])
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
                self._job_result(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
                "trace", "timeline", "postmortem", "bottleneck"
            ):
                self._job_trace(parts[1], parts[2])
            else:
                self._error(404, f"no route for GET {url.path}")
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("GET %s failed", self.path)
            self._error(500, repr(exc))

    def do_POST(self):  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._submit()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._cancel(parts[1])
            else:
                self._error(404, f"no route for POST {url.path}")
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("POST %s failed", self.path)
            self._error(500, repr(exc))

    def do_DELETE(self):  # noqa: N802 - stdlib naming
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            self._cancel(parts[1])
        else:
            self._error(404, f"no route for DELETE {self.path}")

    # -- handlers -----------------------------------------------------------------

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        tenant = body.get("tenant") or self.headers.get("X-Tenant")
        if not tenant:
            self._error(400, "tenant required (body field or X-Tenant header)")
            return
        workload = body.get("workload")
        if not workload:
            self._error(400, "workload required")
            return
        params = body.get("params") or {}
        idempotency_key = (
            body.get("idempotency_key") or self.headers.get("Idempotency-Key")
        )
        try:
            job, decision = self.service.submit(
                tenant, workload, params, idempotency_key=idempotency_key
            )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        if job is None:
            headers = []
            if decision.retry_after is not None:
                headers.append(("Retry-After", str(int(decision.retry_after))))
            self._json(
                decision.status,
                {"error": decision.reason, **decision.to_json()},
                headers,
            )
            return
        payload = job.to_json()
        if decision.deduplicated:
            payload["deduplicated"] = True
        self._json(decision.status, payload)

    def _job_status(self, job_id: str) -> None:
        job = self.service.get_job(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._json(200, job.to_json(full=True))

    def _job_result(self, job_id: str) -> None:
        job = self.service.get_job(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if job.state not in TERMINAL_STATES:
            self._error(409, f"job {job_id} is {job.state.value}, not finished")
            return
        if job.state is not JobState.DONE:
            self._json(
                410,
                {
                    "error": f"job {job_id} ended {job.state.value}",
                    "state": job.state.value,
                    "detail": job.error,
                },
            )
            return
        self._json(
            200,
            {"id": job.id, "state": job.state.value,
             "output": self.service.job_output(job),
             "metrics": job.metrics},
        )

    def _job_trace(self, job_id: str, kind: str) -> None:
        """Trace artifacts: the merged Chrome trace, the compact timeline,
        the bottleneck analysis, or the post-mortem bundle.  404 for an
        untraced job, 409 while the trace is still being recorded (it
        merges at the terminal state)."""
        job = self.service.get_job(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if kind == "postmortem":
            bundle = self.service.job_postmortem_json(job)
            if bundle is None:
                self._error(404, f"no post-mortem bundle for job {job_id}")
                return
            self._json(200, bundle)
            return
        if job.trace is not None:
            # Still recording, or terminal with the merge in flight (the
            # runner finalizes outside the service lock) — retryable.
            self._error(
                409, f"job {job_id} is {job.state.value}; "
                "trace merges when it finishes",
            )
            return
        if kind == "trace":
            payload = self.service.job_trace_json(job)
        elif kind == "bottleneck":
            payload = self.service.job_bottleneck_json(job)
        else:
            payload = self.service.job_timeline_json(job)
        if payload is None:
            self._error(
                404,
                f"no {kind} for job {job_id} (submit with params.trace "
                "or serve with --trace-jobs)",
            )
            return
        self._json(200, payload)

    def _cancel(self, job_id: str) -> None:
        outcome = self.service.cancel(job_id)
        if outcome is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._json(202, {"id": job_id, "state": outcome})


class ApiServer:
    """Lifecycle wrapper mirroring :class:`repro.obs.serve.MetricsServer`:
    ``port=0`` binds ephemeral, :attr:`port` is live after :meth:`start`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def start(self) -> "ApiServer":
        handler = type("_BoundApiHandler", (_ApiHandler,),
                       {"service": self.service})
        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-api",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "service API on http://%s:%d (POST /jobs, /health, /metrics)",
            self.host, self.port,
        )
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
