"""Per-tenant state: fairness weight, quotas, a *persistent* speculation
throttle, and tenant-scoped degradation.

The isolation story of the service lives here.  Each tenant owns one
:class:`TenantThrottle` — a thread-safe AIMD controller (PR 2's
:class:`~repro.resilience.throttle.SpeculationThrottle`) that survives
across the tenant's jobs and is handed to each of its leases as
``job_throttle``.  A misspeculation storm in one tenant's job shrinks *that
tenant's* window (so its next job starts throttled, near-serial if the
storm was bad), while every other tenant's controller — and therefore its
speculation depth, its workers, its latency — is untouched.  Degradation is
reported the same way: a storming tenant shows ``degraded`` in ``/health``
while its neighbours stay ``ok``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.obs.registry import BUCKET_BOUNDS, bucket_index
from repro.resilience.throttle import (
    SpeculationThrottle,
    ThrottleConfig,
    max_window_for,
)


class StageHistogram:
    """A fixed-bucket latency histogram for one job-plane stage.

    Same power-of-two bucket bounds as the engine registry
    (:data:`repro.obs.registry.BUCKET_BOUNDS`), so ``/metrics`` exposes
    job-plane and engine-plane latencies on one comparable axis — and the
    per-job trace spans can be checked against the scrape within sampling
    error.  Mutated under the service lock; no locking of its own.
    """

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.total = 0.0
        self.count = 0
        self.max_value = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        self.buckets[bucket_index(seconds)] += 1
        self.total += seconds
        self.count += 1
        self.max_value = max(self.max_value, seconds)


class TenantThrottle:
    """A lock-wrapped :class:`SpeculationThrottle` shared by all of one
    tenant's jobs — concurrent same-tenant committers may record into it
    from different threads, and it persists across jobs so a storm's
    shrunken window carries into the tenant's next lease.

    Exposes exactly the attribute surface the engine reads (``window``,
    ``record``, ``shrinks``, ``grows``, ``min_window_seen``)."""

    def __init__(self, config: ThrottleConfig, max_window: int) -> None:
        self._throttle = SpeculationThrottle(config, max_window)
        self._lock = threading.Lock()

    def record(self, misspeculated: bool) -> Optional[int]:
        with self._lock:
            return self._throttle.record(misspeculated)

    @property
    def window(self) -> int:
        return self._throttle.window

    @property
    def max_window(self) -> int:
        return self._throttle.max_window

    @property
    def min_window(self) -> int:
        return self._throttle.config.min_window

    @property
    def shrinks(self) -> int:
        return self._throttle.shrinks

    @property
    def grows(self) -> int:
        return self._throttle.grows

    @property
    def min_window_seen(self) -> int:
        return self._throttle.min_window_seen

    @property
    def at_floor(self) -> bool:
        """The window is pinned at the serial floor — the tenant is being
        executed (near-)sequentially until its storm passes."""
        return self._throttle.window <= self._throttle.config.min_window


class TenantState:
    """Everything the service tracks about one tenant.  Mutated only under
    the service lock; read for ``/metrics`` and ``/health``."""

    def __init__(self, name: str, weight: int, throttle: TenantThrottle) -> None:
        self.name = name
        self.weight = max(1, weight)
        self.throttle = throttle
        # lifecycle counters
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.running = 0
        # durability-plane counters
        #: retry attempts scheduled after a failed run
        self.retries = 0
        #: jobs whose bounded retries exhausted (poison jobs)
        self.dead_letter = 0
        #: jobs cancelled because their deadline passed
        self.deadline_cancelled = 0
        #: jobs re-admitted or resumed by crash recovery
        self.recovered = 0
        # aggregated engine counters across finished jobs
        self.committed = 0
        self.conflicts = 0
        self.serial_reexec = 0
        #: finished jobs whose watchdog flagged a misspeculation storm
        self.storms = 0
        #: tenant-scoped degradation: set while the tenant's last finished
        #: job stormed or its throttle window sits at the serial floor;
        #: cleared by a clean job.  ``/health`` also folds in the *live*
        #: watchdog verdicts of the tenant's running jobs.
        self.degraded = False
        # queue-wait accounting (admission -> dispatch)
        self.queue_wait_total = 0.0
        self.queue_wait_count = 0
        self.queue_wait_max = 0.0
        #: full queue-wait distribution (cumulative-``le`` on /metrics)
        self.queue_wait_hist = StageHistogram()
        #: scheduler pick latency (one ``FairScheduler.take`` decision)
        self.sched_pick_hist = StageHistogram()
        #: post-mortem bundles snapshotted for this tenant
        self.postmortems = 0

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_wait_total += seconds
        self.queue_wait_count += 1
        self.queue_wait_max = max(self.queue_wait_max, seconds)
        self.queue_wait_hist.observe(seconds)

    def record_sched_pick(self, seconds: float) -> None:
        self.sched_pick_hist.observe(seconds)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "running": self.running,
            "retries": self.retries,
            "dead_letter": self.dead_letter,
            "deadline_cancelled": self.deadline_cancelled,
            "recovered": self.recovered,
            "committed": self.committed,
            "conflicts": self.conflicts,
            "serial_reexec": self.serial_reexec,
            "storms": self.storms,
            "degraded": self.degraded,
            "window": self.throttle.window,
            "queue_wait_max_s": round(self.queue_wait_max, 6),
            "postmortems": self.postmortems,
        }


class TenantDirectory:
    """Create-on-first-use tenant registry.  The throttle's ceiling is
    sized for the pool (``workers * batch + capacity`` — the widest window
    a lease could ever use), its floor is the serial window of 1."""

    def __init__(
        self,
        pool_workers: int,
        capacity: int,
        batch_size: int,
        default_weight: int = 1,
        weights: Optional[Dict[str, int]] = None,
        throttle_config: Optional[ThrottleConfig] = None,
    ) -> None:
        self._max_window = max_window_for(pool_workers, capacity, batch_size)
        self._default_weight = max(1, default_weight)
        self._weights = dict(weights or {})
        self._throttle_config = throttle_config or ThrottleConfig()
        self._tenants: Dict[str, TenantState] = {}

    def get_or_create(self, name: str) -> TenantState:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = TenantState(
                name,
                self._weights.get(name, self._default_weight),
                TenantThrottle(self._throttle_config, self._max_window),
            )
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Optional[TenantState]:
        return self._tenants.get(name)

    def all(self) -> Dict[str, TenantState]:
        return dict(self._tenants)
