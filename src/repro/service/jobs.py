"""Job model and request resolution for the service.

A job is one pipeline run requested over the API: a workload name plus
parameters, owned by a tenant, moving through ``queued -> running ->
done | failed | cancelled``.  Two workload families are accepted:

- any suite benchmark with a real ``exec_spec`` (``164.gzip``,
  ``197.parser``, ``256.bzip2``, ...) — the paper's analogs on the engine;
- ``synthetic`` — a deterministic spin-work pipeline whose ``iterations``
  and ``spin`` parameters make it the natural load/chaos generator for
  tests and smoke scripts.

``params.chaos`` (``{"conflicts": k, "errors": m, "crashes": c, "seed": s}``)
compiles to a seeded :class:`~repro.exec.faults.FaultPlan`.  Storm seeding
is the point: forced conflicts/errors drive the serial-re-execution rate up
until the tenant's watchdog flags a misspeculation storm and its persistent
throttle clamps the window — all without changing the job's *output*, which
stays bit-identical to a sequential run (the isolation tests depend on
exactly this property).  ``producer_crash_at`` is structurally impossible
here: phase A runs as a thread in the server process (see
:mod:`repro.service.pool`), so requests cannot express it and the lease
runtime rejects it defensively.
"""

from __future__ import annotations

import random
import time
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.exec.engine import PipelineSpec
from repro.exec.faults import FaultPlan
from repro.workloads.suite import SUITE, exec_names

#: The non-benchmark workload: parameterized deterministic spin work.
SYNTHETIC = "synthetic"

_MAX_ITERATIONS = 200_000
_MAX_SPIN = 1_000_000
#: Crash injections per job are capped below the engine's default respawn
#: budget so a single chaotic job cannot push itself into degradation.
_MAX_CRASHES = 2


class JobState(str, Enum):
    """Lifecycle of a submitted job; the string values are the API's."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: A poison job: its bounded retries exhausted without a clean run.
    #: Terminal like FAILED, but distinguishable so operators can see
    #: "this job was *retried* and still failed" at a glance.
    DEAD_LETTER = "dead_letter"


#: States a job can never leave.
TERMINAL_STATES = (
    JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.DEAD_LETTER,
)

#: Retry policy bounds: attempts are bounded (a poison job must land in
#: dead-letter, not loop forever) and backoff is capped.
_MAX_ATTEMPTS_LIMIT = 10
_MAX_BACKOFF_S = 30.0
_MAX_DEADLINE_S = 24 * 3600.0


def _synthetic_produce(i: int) -> int:
    return i


class _SpinWork:
    """Deterministic LCG spin — CPU-bound, value-dependent, picklable."""

    def __init__(self, spin: int) -> None:
        self.spin = spin

    def __call__(self, i: int, value: int) -> int:
        acc = 0
        for k in range(self.spin):
            acc = (acc * 1664525 + value + k + 1013904223) % (1 << 32)
        return acc


def _synthetic_spec(
    iterations: int,
    spin: int,
    fail_at: Optional[int] = None,
    fail_attempts: Optional[int] = None,
    attempt: int = 1,
) -> PipelineSpec:
    """The synthetic spin pipeline, optionally poisoned.

    ``fail_at`` makes the *commit* of that iteration raise — the in-order
    committer dies exactly there, so everything before it is committed
    (checkpointable) and nothing after it is.  ``fail_attempts`` bounds the
    poison to the first k attempts (a *transient* fault: retry k+1 resumes
    from the checkpoint and completes); None poisons every attempt, which
    is how a job earns its way into dead-letter.  Deterministic by
    construction — the retry/dead-letter tests replay these exactly.
    """
    inject = fail_at is not None and (
        fail_attempts is None or attempt <= fail_attempts
    )

    def commit(i: int, result: int, acc: dict) -> None:
        if inject and i == fail_at:
            raise RuntimeError(
                f"injected commit failure at iteration {i} "
                f"(attempt {attempt})"
            )
        acc["checksum"] = (acc.get("checksum", 0) * 31 + result) % (1 << 32)
        acc["items"] = acc.get("items", 0) + 1

    return PipelineSpec(
        iterations=iterations,
        produce=_synthetic_produce,
        work=_SpinWork(spin),
        commit=commit,
    )


def known_workloads() -> list:
    """Workload names the service accepts."""
    return [SYNTHETIC] + exec_names()


def compile_chaos(
    chaos: Optional[Dict[str, Any]], iterations: int
) -> Optional[FaultPlan]:
    """A seeded fault plan from request parameters (None = clean run).

    Iteration targets are sampled without replacement per fault kind from
    one seeded stream, so a given ``(chaos, iterations)`` pair always
    injects the same schedule — reproducible storms.
    """
    if not chaos:
        return None
    if not isinstance(chaos, dict):
        raise ValueError("chaos must be an object")
    conflicts = int(chaos.get("conflicts", 0))
    errors = int(chaos.get("errors", 0))
    crashes = int(chaos.get("crashes", 0))
    seed = int(chaos.get("seed", 0))
    unknown = set(chaos) - {"conflicts", "errors", "crashes", "seed"}
    if unknown:
        raise ValueError(f"unknown chaos keys: {sorted(unknown)}")
    if min(conflicts, errors, crashes) < 0:
        raise ValueError("chaos counts cannot be negative")
    if crashes > _MAX_CRASHES:
        raise ValueError(f"at most {_MAX_CRASHES} crash injections per job")
    if conflicts + errors > iterations:
        raise ValueError("more chaos injections than iterations")
    if conflicts + errors + crashes == 0:
        return None
    rng = random.Random(seed)
    population = list(range(iterations))
    rng.shuffle(population)
    cursor = 0

    def take(count: int) -> frozenset:
        nonlocal cursor
        chosen = frozenset(population[cursor:cursor + count])
        cursor += count
        return chosen

    conflict_set = take(conflicts)
    error_set = take(errors)
    crash_set = frozenset(
        population[cursor + k] for k in range(min(crashes, iterations - cursor))
    )
    return FaultPlan(
        conflict_iterations=conflict_set,
        error_iterations=error_set,
        crash_iterations=crash_set,
    )


def resolve_retry(params: Dict[str, Any]) -> Tuple[int, float]:
    """``(max_attempts, backoff_base_s)`` from ``params.retry``.

    Default is ``(1, 0)`` — a failure is terminal, exactly the pre-retry
    behavior; jobs opt in explicitly.  Raises ``ValueError`` (→ 400) on
    anything malformed.
    """
    retry = params.get("retry")
    if retry is None:
        return 1, 0.0
    if not isinstance(retry, dict):
        raise ValueError("retry must be an object")
    unknown = set(retry) - {"max_attempts", "backoff_base"}
    if unknown:
        raise ValueError(f"unknown retry keys: {sorted(unknown)}")
    max_attempts = int(retry.get("max_attempts", 3))
    if not 1 <= max_attempts <= _MAX_ATTEMPTS_LIMIT:
        raise ValueError(
            f"retry.max_attempts must be in [1, {_MAX_ATTEMPTS_LIMIT}]"
        )
    backoff = float(retry.get("backoff_base", 0.2))
    if not 0.0 <= backoff <= _MAX_BACKOFF_S:
        raise ValueError(
            f"retry.backoff_base must be in [0, {_MAX_BACKOFF_S}]"
        )
    return max_attempts, backoff


def resolve_deadline(params: Dict[str, Any]) -> Optional[float]:
    """``params.deadline_s`` validated (None = no deadline)."""
    deadline = params.get("deadline_s")
    if deadline is None:
        return None
    deadline = float(deadline)
    if not 0.0 < deadline <= _MAX_DEADLINE_S:
        raise ValueError(f"deadline_s must be in (0, {_MAX_DEADLINE_S}]")
    return deadline


def retry_delay(job_id: str, attempt: int, backoff_base: float) -> float:
    """Exponential backoff with deterministic jitter.

    Jitter is seeded from ``(job_id, attempt)`` so a replayed recovery
    schedules the same waits — the service keeps the engine's discipline
    that randomness is always replayable from its seed.
    """
    if backoff_base <= 0.0:
        return 0.0
    base = min(_MAX_BACKOFF_S, backoff_base * (2 ** (attempt - 1)))
    jitter = random.Random(f"{job_id}/retry/{attempt}").uniform(0.0, 0.5)
    return min(_MAX_BACKOFF_S, base * (1.0 + jitter))


class Job:
    """One submitted pipeline run.  Field mutation happens only under the
    service lock; ``lease``/``engine`` are live-run handles (never
    serialized) used for cancellation and live health."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        workload: str,
        params: Dict[str, Any],
        iterations: int,
        fault_plan: Optional[FaultPlan],
        idempotency_key: Optional[str] = None,
        submitted_unix: Optional[float] = None,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.workload = workload
        self.params = params
        self.iterations = iterations
        self.fault_plan = fault_plan
        self.idempotency_key = idempotency_key
        self.state = JobState.QUEUED
        self.submitted_unix = (
            submitted_unix if submitted_unix is not None else time.time()
        )
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.cancel_requested = False
        self.output: Any = None
        self.metrics: Optional[dict] = None
        self.error: Optional[str] = None
        self.lease = None
        self.engine = None
        # -- durability plane ----------------------------------------------
        self.max_attempts, self.retry_backoff = resolve_retry(params)
        deadline_s = resolve_deadline(params)
        self.deadline_unix: Optional[float] = (
            self.submitted_unix + deadline_s if deadline_s else None
        )
        #: Attempts *started* (1 on the first dispatch).
        self.attempts = 0
        #: Committed-prefix iteration the last run resumed from (0 = fresh).
        self.resumed_from = 0
        #: True once the output lives in the artifact store, not in memory.
        self.output_spilled = False
        #: True if this job object was rebuilt from the journal at startup.
        self.recovered = False
        #: True when the deadline (not a client) requested the cancel.
        self.deadline_fired = False
        # -- tracing plane (repro.obs.jobtrace) -----------------------------
        #: Live :class:`~repro.obs.jobtrace.JobTrace` while the job is
        #: traced and in flight; dropped once the trace is finalized.
        self.trace = None
        #: Per-job spool directory (service + engine spools).
        self.trace_dir: Optional[str] = None
        #: True when ``trace_dir`` is a temp dir (in-memory server) that
        #: must be deleted after the merge.
        self.trace_ephemeral = False
        #: Merged Chrome trace / compact timeline.  Durable servers drop
        #: the (large) Chrome trace after spilling it to the artifact
        #: store; the in-memory server keeps both here.
        self.trace_data: Optional[dict] = None
        self.timeline_data: Optional[dict] = None
        #: Critical-path bottleneck analysis (``repro.obs.analyze``) for a
        #: traced job; durable servers also persist it as an artifact.
        self.bottleneck_data: Optional[dict] = None
        #: Post-mortem bundle: artifact path when durable, the bundle
        #: itself when the server has no artifact store.
        self.postmortem_path: Optional[str] = None
        self.postmortem_data: Optional[dict] = None

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds between admission and dispatch (None while queued)."""
        if self.started_unix is not None:
            return self.started_unix - self.submitted_unix
        if self.state is JobState.CANCELLED and self.finished_unix is not None:
            return self.finished_unix - self.submitted_unix
        return None

    @property
    def deadline_exceeded(self) -> bool:
        return (
            self.deadline_unix is not None
            and time.time() > self.deadline_unix
        )

    def build_spec(self) -> PipelineSpec:
        """A fresh spec for this job — fresh, because suite producers are
        stateful and must start from their initial state every run.
        ``attempts`` feeds the synthetic fault injection so transient
        poisons stop firing after their configured attempt."""
        return build_spec(self.workload, self.params, attempt=max(1, self.attempts))

    def to_json(self, full: bool = False) -> dict:
        data = {
            "id": self.id,
            "tenant": self.tenant,
            "workload": self.workload,
            "state": self.state.value,
            "iterations": self.iterations,
            "submitted_unix": round(self.submitted_unix, 3),
            "started_unix": (
                round(self.started_unix, 3) if self.started_unix else None
            ),
            "finished_unix": (
                round(self.finished_unix, 3) if self.finished_unix else None
            ),
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }
        wait = self.queue_wait_s
        data["queue_wait_s"] = round(wait, 6) if wait is not None else None
        if self.attempts > 1 or self.max_attempts > 1:
            data["attempts"] = self.attempts
            data["max_attempts"] = self.max_attempts
        if self.deadline_unix is not None:
            data["deadline_unix"] = round(self.deadline_unix, 3)
            data["deadline_fired"] = self.deadline_fired
        if self.idempotency_key is not None:
            data["idempotency_key"] = self.idempotency_key
        if self.recovered:
            data["recovered"] = True
        if self.resumed_from:
            data["resumed_from"] = self.resumed_from
        if (
            self.trace is not None
            or self.trace_data is not None
            or self.timeline_data is not None
        ):
            data["traced"] = True
        if self.postmortem_path or self.postmortem_data:
            data["postmortem"] = True
        if full:
            data["params"] = self.params
            data["metrics"] = self.metrics
        return data


def resolve_iterations(workload: str, params: Dict[str, Any]) -> int:
    """Validate a request and return its iteration count (raises
    ``ValueError`` on anything malformed — the API maps that to 400)."""
    if not isinstance(params, dict):
        raise ValueError("params must be an object")
    # Durability-plane params, valid for every workload; validated for
    # side effects (each raises ValueError on malformed input).
    resolve_retry(params)
    resolve_deadline(params)
    if not isinstance(params.get("trace", False), bool):
        raise ValueError("trace must be a boolean")
    common = {"chaos", "retry", "deadline_s", "trace"}
    if workload == SYNTHETIC:
        iterations = int(params.get("iterations", 48))
        spin = int(params.get("spin", 2000))
        if not 1 <= iterations <= _MAX_ITERATIONS:
            raise ValueError(
                f"iterations must be in [1, {_MAX_ITERATIONS}]"
            )
        if not 1 <= spin <= _MAX_SPIN:
            raise ValueError(f"spin must be in [1, {_MAX_SPIN}]")
        fail_at = params.get("fail_at")
        if fail_at is not None and not 0 <= int(fail_at) < iterations:
            raise ValueError("fail_at must be in [0, iterations)")
        fail_attempts = params.get("fail_attempts")
        if fail_attempts is not None and int(fail_attempts) < 1:
            raise ValueError("fail_attempts must be >= 1")
        unknown = set(params) - common - {
            "iterations", "spin", "fail_at", "fail_attempts",
        }
        if unknown:
            raise ValueError(f"unknown params: {sorted(unknown)}")
        return iterations
    factory = SUITE.get(workload)
    if factory is None or not factory.has_exec_spec:
        raise ValueError(
            f"unknown workload {workload!r}; known: {known_workloads()}"
        )
    unknown = set(params) - common
    if unknown:
        raise ValueError(f"unknown params: {sorted(unknown)}")
    return factory().exec_spec().iterations


def build_spec(
    workload: str, params: Dict[str, Any], attempt: int = 1
) -> PipelineSpec:
    if workload == SYNTHETIC:
        fail_at = params.get("fail_at")
        fail_attempts = params.get("fail_attempts")
        return _synthetic_spec(
            int(params.get("iterations", 48)),
            int(params.get("spin", 2000)),
            fail_at=int(fail_at) if fail_at is not None else None,
            fail_attempts=(
                int(fail_attempts) if fail_attempts is not None else None
            ),
            attempt=attempt,
        )
    return SUITE[workload]().exec_spec()
