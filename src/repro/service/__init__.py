"""repro.service — multi-tenant pipeline-as-a-service.

A long-lived job server over the A/B/C execution engine: JSON HTTP API
(submit/status/result/cancel/list), bounded admission with per-tenant
quotas, weighted round-robin fair scheduling, and a shared pool of
long-lived worker processes leased per job instead of forked per job.
Per-tenant persistent speculation throttles scope misspeculation storms
to the tenant that caused them.  With ``state_dir`` set the job plane is
durable (:mod:`repro.service.durability`): a write-ahead journal plus an
on-disk artifact store let a restarted server re-admit queued jobs,
resume interrupted ones from their committed-prefix checkpoint, retry
transient failures with bounded backoff (poison jobs dead-letter), and
honor idempotency keys exactly-once across crashes.

Start one with ``python -m repro serve`` or in-process::

    from repro.service import PipelineService, ServiceConfig

    service = PipelineService(ServiceConfig(pool_workers=2)).start()
    job, decision = service.submit("acme", "synthetic", {"iterations": 64})
    ...
    service.drain_and_stop()
"""

from repro.service.durability import (  # noqa: F401
    ArtifactStore,
    JobJournal,
    JournalStats,
    RecoveryReport,
    ReplayedJob,
    fold_records,
)
from repro.service.jobs import (  # noqa: F401
    Job,
    JobState,
    SYNTHETIC,
    TERMINAL_STATES,
    compile_chaos,
    known_workloads,
    retry_delay,
)
from repro.service.pool import LeaseRuntime, WorkerPool  # noqa: F401
from repro.service.queue import (  # noqa: F401
    Admission,
    AdmissionConfig,
    AdmissionController,
)
from repro.service.scheduler import FairScheduler  # noqa: F401
from repro.service.server import PipelineService, ServiceConfig  # noqa: F401
from repro.service.tenants import (  # noqa: F401
    TenantDirectory,
    TenantState,
    TenantThrottle,
)

__all__ = [
    "Admission",
    "AdmissionConfig",
    "AdmissionController",
    "ArtifactStore",
    "FairScheduler",
    "Job",
    "JobJournal",
    "JobState",
    "JournalStats",
    "LeaseRuntime",
    "PipelineService",
    "RecoveryReport",
    "ReplayedJob",
    "ServiceConfig",
    "SYNTHETIC",
    "TERMINAL_STATES",
    "TenantDirectory",
    "TenantState",
    "TenantThrottle",
    "WorkerPool",
    "compile_chaos",
    "fold_records",
    "known_workloads",
    "retry_delay",
]
