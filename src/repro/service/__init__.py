"""repro.service — multi-tenant pipeline-as-a-service.

A long-lived job server over the A/B/C execution engine: JSON HTTP API
(submit/status/result/cancel/list), bounded admission with per-tenant
quotas, weighted round-robin fair scheduling, and a shared pool of
long-lived worker processes leased per job instead of forked per job.
Per-tenant persistent speculation throttles scope misspeculation storms
to the tenant that caused them.

Start one with ``python -m repro serve`` or in-process::

    from repro.service import PipelineService, ServiceConfig

    service = PipelineService(ServiceConfig(pool_workers=2)).start()
    job, decision = service.submit("acme", "synthetic", {"iterations": 64})
    ...
    service.drain_and_stop()
"""

from repro.service.jobs import (  # noqa: F401
    Job,
    JobState,
    SYNTHETIC,
    TERMINAL_STATES,
    compile_chaos,
    known_workloads,
)
from repro.service.pool import LeaseRuntime, WorkerPool  # noqa: F401
from repro.service.queue import (  # noqa: F401
    Admission,
    AdmissionConfig,
    AdmissionController,
)
from repro.service.scheduler import FairScheduler  # noqa: F401
from repro.service.server import PipelineService, ServiceConfig  # noqa: F401
from repro.service.tenants import (  # noqa: F401
    TenantDirectory,
    TenantState,
    TenantThrottle,
)

__all__ = [
    "Admission",
    "AdmissionConfig",
    "AdmissionController",
    "FairScheduler",
    "Job",
    "JobState",
    "LeaseRuntime",
    "PipelineService",
    "ServiceConfig",
    "SYNTHETIC",
    "TERMINAL_STATES",
    "TenantDirectory",
    "TenantState",
    "TenantThrottle",
    "WorkerPool",
    "compile_chaos",
    "known_workloads",
]
