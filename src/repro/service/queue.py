"""Admission control: who gets into the queue, and who gets a 429.

Pure decision logic — the service feeds it the current depths and flags
under its lock; no state lives here beyond the configured limits, which
keeps every boundary unit-testable without a server.

Order of checks (first refusal wins):

1. **draining** — the server is shutting down: 503, no retry hint (clients
   should fail over, not wait);
2. **load shedding** — a running job's watchdog reports a commit stall:
   the machine is not keeping up with what it already accepted, so new
   work waits out the stall (429 + Retry-After);
3. **global depth** — the bounded queue is full (429 + Retry-After scaled
   to the backlog);
4. **per-tenant quotas** — queued and queued+running caps so one noisy
   tenant cannot occupy the whole queue (429).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Admission:
    """One admission verdict, pre-shaped for the HTTP layer."""

    accepted: bool
    status: int  # 202 accepted, 200 deduplicated, 429 over a limit, 503 draining
    reason: str = ""
    retry_after: Optional[float] = None
    #: True when an idempotency key matched an existing job — the caller
    #: gets that job back (200, not 202) instead of a duplicate.
    deduplicated: bool = False

    def to_json(self) -> dict:
        data = {"accepted": self.accepted, "reason": self.reason}
        if self.retry_after is not None:
            data["retry_after_s"] = self.retry_after
        if self.deduplicated:
            data["deduplicated"] = True
        return data


ACCEPTED = Admission(accepted=True, status=202)
#: An idempotent resubmit: the key matched, the existing job is returned.
DEDUPLICATED = Admission(
    accepted=True, status=200, reason="idempotency key matched existing job",
    deduplicated=True,
)


@dataclass(frozen=True)
class AdmissionConfig:
    """The queue's shape: global bound plus per-tenant quotas."""

    max_queued: int = 16
    tenant_queued_quota: int = 8
    tenant_running_quota: int = 1

    def __post_init__(self):
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.tenant_queued_quota < 1:
            raise ValueError("tenant_queued_quota must be >= 1")
        if self.tenant_running_quota < 1:
            raise ValueError("tenant_running_quota must be >= 1")


class AdmissionController:
    """Applies :class:`AdmissionConfig` to one submission at a time."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config

    def admit(
        self,
        *,
        depth: int,
        tenant_queued: int,
        tenant_running: int,
        draining: bool = False,
        shedding: bool = False,
        dispatch_rate: Optional[float] = None,
    ) -> Admission:
        """Decide one submission given the queue's current occupancy.

        ``dispatch_rate`` (jobs/second actually dispatched recently, None
        when unknown) turns ``Retry-After`` from a guess into a measured
        estimate of when the backlog will have drained.
        """
        config = self.config
        if draining:
            return Admission(
                accepted=False, status=503,
                reason="server is draining; not accepting new jobs",
            )
        if shedding:
            return Admission(
                accepted=False, status=429,
                reason="load shedding: a running job is stalled",
                retry_after=self._retry_after(depth, dispatch_rate),
            )
        if depth >= config.max_queued:
            return Admission(
                accepted=False, status=429,
                reason=f"queue full ({depth}/{config.max_queued})",
                retry_after=self._retry_after(depth, dispatch_rate),
            )
        if tenant_queued >= config.tenant_queued_quota:
            return Admission(
                accepted=False, status=429,
                reason=(
                    f"tenant queued quota reached "
                    f"({tenant_queued}/{config.tenant_queued_quota})"
                ),
                retry_after=self._retry_after(tenant_queued, dispatch_rate),
            )
        if tenant_queued + tenant_running >= (
            config.tenant_queued_quota + config.tenant_running_quota
        ):
            return Admission(
                accepted=False, status=429,
                reason="tenant in-flight quota reached",
                retry_after=self._retry_after(
                    tenant_queued + tenant_running, dispatch_rate
                ),
            )
        return ACCEPTED

    @staticmethod
    def _retry_after(backlog: int, dispatch_rate: Optional[float] = None) -> float:
        """Seconds until the backlog plausibly drains.

        With a measured dispatch rate, that's literally ``backlog / rate``
        (clamped to [1, 60] so a burst never tells a client "come back in
        an hour").  Without one — cold start, or nothing has dispatched
        recently — fall back to the coarse backlog-proportional hint.
        """
        if dispatch_rate is not None and dispatch_rate > 0.0:
            estimate = max(1, backlog) / dispatch_rate
            return float(max(1.0, min(60.0, round(estimate, 1))))
        return float(max(1, min(30, backlog)))
